#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace rsmi {

namespace obs_internal {

size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace obs_internal

namespace {

/// Inclusive value range of histogram bucket `b` (see HistogramBucketOf).
void BucketRange(size_t b, double* lo, double* hi) {
  if (b == 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  *lo = static_cast<double>(b == 1 ? 1.0 : std::exp2(static_cast<double>(b - 1)));
  *hi = std::exp2(static_cast<double>(b)) - 1.0;
}

/// Appends `v` to `out` formatted as a JSON number.
void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  *out += buf;
}

/// Prometheus metric name: '.' and any other non-[a-zA-Z0-9_] byte maps
/// to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

double MetricSample::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  // Target rank among the observations, 1-based.
  const double rank = p * static_cast<double>(count - 1) + 1.0;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= rank) {
      double lo = 0.0;
      double hi = 0.0;
      BucketRange(b, &lo, &hi);
      // Linear interpolation by rank position inside the bucket.
      const double within =
          (rank - static_cast<double>(prev)) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
  }
  double lo = 0.0;
  double hi = 0.0;
  BucketRange(buckets.size() - 1, &lo, &hi);
  return hi;
}

double MetricSample::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const MetricSample& in : other.samples) {
    auto it = std::lower_bound(
        samples.begin(), samples.end(), in,
        [](const MetricSample& a, const MetricSample& b) {
          return a.name < b.name;
        });
    if (it == samples.end() || it->name != in.name) {
      samples.insert(it, in);
      continue;
    }
    if (it->kind != in.kind) continue;  // name clash across kinds: keep ours
    switch (in.kind) {
      case MetricSample::Kind::kCounter:
        it->value += in.value;
        break;
      case MetricSample::Kind::kGauge:
        it->value = in.value;
        break;
      case MetricSample::Kind::kHistogram:
        it->count += in.count;
        it->sum += in.sum;
        it->buckets.resize(std::max(it->buckets.size(), in.buckets.size()), 0);
        for (size_t b = 0; b < in.buckets.size(); ++b) {
          it->buckets[b] += in.buckets[b];
        }
        break;
    }
  }
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int64_t MetricsSnapshot::ValueOf(const std::string& name,
                                 int64_t dflt) const {
  const MetricSample* s = Find(name);
  return s == nullptr ? dflt : s->value;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + s.name + "\": ";
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += "{\"count\": ";
      AppendU64(&out, s.count);
      out += ", \"sum\": ";
      AppendU64(&out, s.sum);
      out += ", \"mean\": ";
      AppendDouble(&out, s.Mean());
      out += ", \"p50\": ";
      AppendDouble(&out, s.Percentile(0.50));
      out += ", \"p99\": ";
      AppendDouble(&out, s.Percentile(0.99));
      out += ", \"p999\": ";
      AppendDouble(&out, s.Percentile(0.999));
      // Only occupied buckets, as [bucket_index, count] pairs.
      out += ", \"buckets\": [";
      bool bfirst = true;
      for (size_t b = 0; b < s.buckets.size(); ++b) {
        if (s.buckets[b] == 0) continue;
        if (!bfirst) out += ", ";
        bfirst = false;
        out += "[";
        AppendU64(&out, b);
        out += ", ";
        AppendU64(&out, s.buckets[b]);
        out += "]";
      }
      out += "]}";
    } else {
      AppendI64(&out, s.value);
    }
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const MetricSample& s : samples) {
    const std::string name = PromName(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + name + " counter\n" + name + " ";
        AppendI64(&out, s.value);
        out += "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n" + name + " ";
        AppendI64(&out, s.value);
        out += "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cum = 0;
        for (size_t b = 0; b < s.buckets.size(); ++b) {
          if (s.buckets[b] == 0) continue;
          cum += s.buckets[b];
          double lo = 0.0;
          double hi = 0.0;
          BucketRange(b, &lo, &hi);
          out += name + "_bucket{le=\"";
          AppendDouble(&out, hi);
          out += "\"} ";
          AppendU64(&out, cum);
          out += "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        AppendU64(&out, s.count);
        out += "\n" + name + "_sum ";
        AppendU64(&out, s.sum);
        out += "\n" + name + "_count ";
        AppendU64(&out, s.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

void MetricsSnapshot::EncodeTo(Serializer* out) const {
  out->WritePod<uint32_t>(static_cast<uint32_t>(samples.size()));
  for (const MetricSample& s : samples) {
    out->WriteString(s.name);
    out->WritePod<uint8_t>(static_cast<uint8_t>(s.kind));
    out->WritePod<int64_t>(s.value);
    out->WritePod<uint64_t>(s.count);
    out->WritePod<uint64_t>(s.sum);
    out->WriteVec(s.buckets);
  }
}

bool MetricsSnapshot::DecodeFrom(Deserializer* in, MetricsSnapshot* out) {
  uint32_t n = 0;
  if (!in->ReadPod(&n)) return false;
  // Each sample is at least name len + kind + value + count + sum.
  if (n > in->remaining() / (4 + 1 + 8 + 8 + 8)) return false;
  out->samples.clear();
  out->samples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MetricSample s;
    uint8_t kind = 0;
    if (!in->ReadString(&s.name)) return false;
    if (!in->ReadPod(&kind)) return false;
    if (kind > static_cast<uint8_t>(MetricSample::Kind::kHistogram)) {
      return false;
    }
    s.kind = static_cast<MetricSample::Kind>(kind);
    if (!in->ReadPod(&s.value)) return false;
    if (!in->ReadPod(&s.count)) return false;
    if (!in->ReadPod(&s.sum)) return false;
    if (!in->ReadVec(&s.buckets)) return false;
    if (s.buckets.size() > Histogram::kBuckets) return false;
    out->samples.push_back(std::move(s));
  }
  return true;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    slot->enabled_ = &flag_;
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    slot->enabled_ = &flag_;
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    slot->enabled_ = &flag_;
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iterates in name order, so `samples` comes out sorted (the
  // MergeFrom invariant).
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<int64_t>(c->Value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->Value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.buckets.assign(Histogram::kBuckets, 0);
    for (const auto& cell : h->shards_) {
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        s.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
      s.sum += cell.sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t b : s.buckets) s.count += b;
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace rsmi
