#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace rsmi {

std::string TraceJson(const std::vector<TraceSpan>& spans,
                      const QueryContext& cost) {
  std::string out = "{\"spans\": [";
  char buf[128];
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) out += ", ";
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"start_us\": %" PRIu64
                  ", \"end_us\": %" PRIu64 "}",
                  spans[i].name.c_str(), spans[i].start_us, spans[i].end_us);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "], \"cost\": {\"block_accesses\": %" PRIu64
                ", \"model_invocations\": %" PRIu64 ", \"descents\": %" PRIu64
                ", \"nodes_visited\": %" PRIu64 "}}",
                cost.block_accesses, cost.model_invocations, cost.descents,
                cost.nodes_visited);
  out += buf;
  return out;
}

}  // namespace rsmi
