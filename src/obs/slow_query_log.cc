#include "obs/slow_query_log.h"

#include <cinttypes>
#include <cstdio>

namespace rsmi {

namespace {

/// Stable lowercase names for Request::Type values without pulling the
/// request header into the obs layer.
const char* OpName(uint8_t op) {
  switch (op) {
    case 0:
      return "point";
    case 1:
      return "window";
    case 2:
      return "knn";
    case 3:
      return "insert";
    case 4:
      return "delete";
    case 5:
      return "reload";
    case 6:
      return "update_batch";
    case 7:
      return "stats";
    default:
      return "unknown";
  }
}

}  // namespace

void EncodeSlowQueryEntries(const std::vector<SlowQueryEntry>& entries,
                            Serializer* out) {
  out->WritePod<uint32_t>(static_cast<uint32_t>(entries.size()));
  for (const SlowQueryEntry& e : entries) {
    out->WritePod<uint8_t>(e.op);
    out->WritePod<uint8_t>(e.status);
    out->WritePod<uint64_t>(e.id);
    out->WritePod<uint64_t>(e.queue_us);
    out->WritePod<uint64_t>(e.exec_us);
    out->WritePod<uint64_t>(e.total_us);
    out->WritePod<QueryContext>(e.cost);
  }
}

bool DecodeSlowQueryEntries(Deserializer* in,
                            std::vector<SlowQueryEntry>* out) {
  uint32_t n = 0;
  if (!in->ReadPod(&n)) return false;
  const size_t entry_bytes = 2 + 4 * 8 + sizeof(QueryContext);
  if (n > in->remaining() / entry_bytes) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SlowQueryEntry e;
    if (!in->ReadPod(&e.op) || !in->ReadPod(&e.status) ||
        !in->ReadPod(&e.id) || !in->ReadPod(&e.queue_us) ||
        !in->ReadPod(&e.exec_us) || !in->ReadPod(&e.total_us) ||
        !in->ReadPod(&e.cost)) {
      return false;
    }
    out->push_back(e);
  }
  return true;
}

std::string SlowQueryEntriesJson(const std::vector<SlowQueryEntry>& entries) {
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i != 0) out += ", ";
    std::snprintf(
        buf, sizeof(buf),
        "{\"op\": \"%s\", \"id\": %" PRIu64 ", \"queue_us\": %" PRIu64
        ", \"exec_us\": %" PRIu64 ", \"total_us\": %" PRIu64
        ", \"block_accesses\": %" PRIu64 "}",
        OpName(e.op), e.id, e.queue_us, e.exec_us, e.total_us,
        e.cost.block_accesses);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace rsmi
