#ifndef RSMI_OBS_METRICS_H_
#define RSMI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/serializer.h"

namespace rsmi {

/// Runtime metrics substrate of the serving stack (src/obs/). Three
/// metric kinds, all safe to record into from any number of threads with
/// no locking on the hot path:
///
///  - Counter:   monotonically increasing, sharded over cache-line-padded
///               atomic cells so concurrent writers from the worker pool
///               do not ping-pong one line.
///  - Gauge:     a single settable value (pool sizes, config echoes).
///  - Histogram: log2-bucketed value distribution (latencies in
///               microseconds, batch sizes). Fixed 64 buckets, bucket b
///               covers [2^(b-1), 2^b); p50/p99/p999 come from log-linear
///               interpolation inside the target bucket, so estimates are
///               exact-ish (within the bucket's resolution) at any scale.
///
/// Metrics are owned by a MetricsRegistry and looked up by name once at
/// instrumentation-site setup; the returned reference is stable for the
/// registry's lifetime, so steady-state recording is one relaxed
/// fetch_add with zero allocation. Snapshot() drains everything into a
/// mergeable MetricsSnapshot that serializes over the wire (the server's
/// kStats op), to JSON, and to Prometheus text exposition.
///
/// A registry can be disabled (set_enabled(false)): every Add/Observe
/// through its metrics becomes a no-op. The observability contract —
/// instrumentation never changes results or QueryContext counters —
/// is asserted by observability_test by diffing query results and
/// registry-off/registry-on costs.

namespace obs_internal {

/// Stable small index for the calling thread, used to pick a metric
/// shard. Thread ids are handed out round-robin, so a fixed worker pool
/// spreads perfectly across shards.
size_t ThreadSlot();

/// Set once at registry construction; metrics hold a pointer to their
/// owning registry's flag. A default-constructed metric (tests,
/// standalone use) records unconditionally.
struct EnabledFlag {
  std::atomic<bool> enabled{true};
};

}  // namespace obs_internal

class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    if (enabled_ != nullptr &&
        !enabled_->enabled.load(std::memory_order_relaxed)) {
      return;
    }
    shards_[obs_internal::ThreadSlot() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell shards_[kShards];
  const obs_internal::EnabledFlag* enabled_ = nullptr;
};

class Gauge {
 public:
  void Set(int64_t v) {
    if (enabled_ != nullptr &&
        !enabled_->enabled.load(std::memory_order_relaxed)) {
      return;
    }
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (enabled_ != nullptr &&
        !enabled_->enabled.load(std::memory_order_relaxed)) {
      return;
    }
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> v_{0};
  const obs_internal::EnabledFlag* enabled_ = nullptr;
};

/// Log2-bucket index of `v`: 0 for v == 0, else bit_width(v) — bucket b
/// (b >= 1) holds values in [2^(b-1), 2^b).
inline size_t HistogramBucketOf(uint64_t v) {
  if (v == 0) return 0;
  return 64 - static_cast<size_t>(__builtin_clzll(v));
}

class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bucket 0 (zeros) + 64 log2
  static constexpr size_t kShards = 8;

  void Observe(uint64_t value) {
    if (enabled_ != nullptr &&
        !enabled_->enabled.load(std::memory_order_relaxed)) {
      return;
    }
    Cell& c = shards_[obs_internal::ThreadSlot() & (kShards - 1)];
    c.buckets[HistogramBucketOf(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
    c.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Folds a whole batch of values with one enabled check, one local
  /// bucket-counting pass, and at most kBuckets + 1 fetch_adds — instead
  /// of two atomics per value. Observationally identical to calling
  /// Observe(values[i]) for every i from one thread; use it for
  /// after-the-fact folds of recorded batches (e.g. a replay run's
  /// per-request latencies) so the fold cost stays amortized.
  void ObserveBatch(const uint64_t* values, size_t n) {
    if (n == 0) return;
    if (enabled_ != nullptr &&
        !enabled_->enabled.load(std::memory_order_relaxed)) {
      return;
    }
    uint64_t local[kBuckets] = {};
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      local[HistogramBucketOf(values[i])]++;
      sum += values[i];
    }
    Cell& c = shards_[obs_internal::ThreadSlot() & (kShards - 1)];
    for (size_t b = 0; b < kBuckets; ++b) {
      if (local[b] != 0) {
        c.buckets[b].fetch_add(local[b], std::memory_order_relaxed);
      }
    }
    c.sum.fetch_add(sum, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& c : shards_) {
      for (const auto& b : c.buckets) n += b.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<uint64_t> buckets[kBuckets]{};
    std::atomic<uint64_t> sum{0};
  };
  Cell shards_[kShards];
  const obs_internal::EnabledFlag* enabled_ = nullptr;
};

/// One metric, frozen at snapshot time. Histograms carry their merged
/// bucket array plus count/sum; counters and gauges use `value`.
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;
  uint64_t count = 0;  ///< histogram observation count
  uint64_t sum = 0;    ///< histogram value sum
  std::vector<uint64_t> buckets;  ///< histogram only (kBuckets entries)

  /// Percentile estimate (p in [0, 1]) by log-linear interpolation inside
  /// the bucket holding the target rank. 0 on an empty histogram.
  double Percentile(double p) const;
  /// Mean of observed values; 0 on an empty histogram.
  double Mean() const;
};

/// A frozen, mergeable view of one or more registries. Samples are kept
/// sorted by name, so merging and the text formats are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Folds `other` in: same-name same-kind samples add (counts, sums,
  /// buckets); gauges keep the incoming value (last write wins); samples
  /// only present on one side are copied through.
  void MergeFrom(const MetricsSnapshot& other);

  const MetricSample* Find(const std::string& name) const;
  /// Counter/gauge value by name; `dflt` when absent.
  int64_t ValueOf(const std::string& name, int64_t dflt = 0) const;

  /// One JSON object: counters/gauges as numbers, histograms as
  /// {count, sum, p50, p99, p999, buckets}.
  std::string ToJson() const;
  /// Prometheus text exposition (metric names have '.' mapped to '_';
  /// histograms emit _bucket/_sum/_count series with le labels).
  std::string ToPrometheus() const;

  /// Wire form (the kStats response payload embeds one).
  void EncodeTo(Serializer* out) const;
  static bool DecodeFrom(Deserializer* in, MetricsSnapshot* out);
};

/// Owner and directory of metrics. Lookup is mutex-guarded and intended
/// for instrumentation-site setup (resolve once, hold the reference);
/// recording through the returned metrics is lock-free. Metric objects
/// live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Disabling turns every Add/Observe through this registry's metrics
  /// into a no-op (recorded values stay as they were).
  void set_enabled(bool on) {
    flag_.enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return flag_.enabled.load(std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  /// Process-wide registry used by library internals (the shard layer's
  /// epoch/merge machinery, BatchQueryEngine); the server additionally
  /// owns a private registry for its own counters and merges both into
  /// its kStats responses.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  obs_internal::EnabledFlag flag_;
};

}  // namespace rsmi

#endif  // RSMI_OBS_METRICS_H_
