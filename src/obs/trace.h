#ifndef RSMI_OBS_TRACE_H_
#define RSMI_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/query_context.h"

namespace rsmi {

/// One timed phase of a traced request. Offsets are microseconds since
/// the trace origin (the moment the server decoded the request off the
/// wire), so spans from one request share a clock and order totally.
struct TraceSpan {
  std::string name;
  uint64_t start_us = 0;
  uint64_t end_us = 0;
};

/// Per-request tracing scratchpad. Opt-in: the server creates one only
/// when Request::trace is set, so the untraced hot path allocates and
/// measures nothing on its behalf. The recorded spans travel back in the
/// Response wire frame (admission -> queue -> batch-group -> descent ->
/// reply) next to the op's QueryContext counters.
class TraceContext {
 public:
  TraceContext() : origin_(std::chrono::steady_clock::now()) {}

  /// Microseconds elapsed since the trace origin.
  uint64_t ElapsedUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  void AddSpan(const char* name, uint64_t start_us, uint64_t end_us) {
    TraceSpan s;
    s.name = name;
    s.start_us = start_us;
    s.end_us = end_us < start_us ? start_us : end_us;
    spans_.push_back(std::move(s));
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  std::vector<TraceSpan> TakeSpans() { return std::move(spans_); }

 private:
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceSpan> spans_;
};

/// JSON rendering of a finished trace: the spans plus the op's cost
/// counters ({"spans": [{"name", "start_us", "end_us"}...], "cost":
/// {...}}). The CLI prints this for `--trace` remote queries.
std::string TraceJson(const std::vector<TraceSpan>& spans,
                      const QueryContext& cost);

}  // namespace rsmi

#endif  // RSMI_OBS_TRACE_H_
