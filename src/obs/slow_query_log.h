#ifndef RSMI_OBS_SLOW_QUERY_LOG_H_
#define RSMI_OBS_SLOW_QUERY_LOG_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_context.h"
#include "io/serializer.h"

namespace rsmi {

/// One request that crossed the slow-query threshold. Fixed-size fields
/// only, so entries encode field-wise over the wire (the kStats response
/// returns the newest ones) with no heap traffic in the ring.
struct SlowQueryEntry {
  uint8_t op = 0;      ///< Request::Type of the slow request
  uint8_t status = 0;  ///< StatusCode it was answered with
  uint64_t id = 0;     ///< Request::id
  uint64_t queue_us = 0;  ///< admission -> dequeue
  uint64_t exec_us = 0;   ///< dequeue -> response built
  uint64_t total_us = 0;  ///< queue_us + exec_us
  QueryContext cost;      ///< what the op charged
};

/// Bounded ring buffer of the slowest-path evidence: the server records
/// an entry whenever a request's total latency (queue wait + execution)
/// reaches the configured threshold (`rsmi_cli serve --slow-query-us`).
/// The ring is mutex-guarded — it is only ever touched on the slow path,
/// where one uncontended lock is noise — and overwrites oldest-first, so
/// memory stays bounded no matter how long the server has been up.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Record(const SlowQueryEntry& e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Newest-first, at most `max` entries.
  std::vector<SlowQueryEntry> Latest(size_t max) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SlowQueryEntry> out;
    const size_t n = std::min(max, ring_.size());
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Newest entry sits just behind the overwrite cursor.
      const size_t idx = (head_ + ring_.size() - 1 - i) % ring_.size();
      out.push_back(ring_[idx]);
    }
    return out;
  }

  /// Entries ever recorded (recorded - capacity have been overwritten).
  uint64_t TotalRecorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;
  size_t head_ = 0;  ///< next overwrite position once the ring is full
  uint64_t total_ = 0;
};

/// Field-wise wire encoding (SlowQueryEntry has padding; raw pod writes
/// would leak uninitialized bytes into the frame).
void EncodeSlowQueryEntries(const std::vector<SlowQueryEntry>& entries,
                            Serializer* out);
bool DecodeSlowQueryEntries(Deserializer* in,
                            std::vector<SlowQueryEntry>* out);

/// JSON array of entries (op names resolved) for the CLI.
std::string SlowQueryEntriesJson(const std::vector<SlowQueryEntry>& entries);

}  // namespace rsmi

#endif  // RSMI_OBS_SLOW_QUERY_LOG_H_
