#ifndef RSMI_STORAGE_BUFFER_POOL_H_
#define RSMI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/paged_file.h"

namespace rsmi {

/// An LRU buffer pool over a PagedFile: the main-memory cache that sits
/// between the query algorithms' block accesses and the disk. The paper
/// evaluates with "no buffering assumed"; the pool makes the buffered
/// regime measurable too (bench_ablation_buffer_pool sweeps the pool size
/// from one page to the whole file).
///
/// Usage: Pin() returns the frame payload for a page, faulting it in from
/// disk on a miss; Unpin() releases it (with `dirty=true` if modified).
/// Unpinned frames are evicted in LRU order; dirty frames are written back
/// on eviction and on FlushAll().
///
/// Not thread-safe (single-threaded query structures, as in the paper).
class BufferPool {
 public:
  /// Statistics since construction or ResetStats().
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 1.0 : static_cast<double>(hits) / total;
    }
  };

  /// The pool holds at most `capacity` pages of `file` (>= 1). The file
  /// must outlive the pool.
  BufferPool(PagedFile* file, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id` and returns its payload (payload_size() bytes), or
  /// nullptr on I/O failure / invalid id / all frames pinned. A page may
  /// be pinned recursively; every Pin must be matched by an Unpin.
  unsigned char* Pin(int64_t page_id);

  /// Releases one pin of `page_id`; `dirty` marks the frame for
  /// write-back. Unbalanced Unpins are ignored.
  void Unpin(int64_t page_id, bool dirty = false);

  /// Writes all dirty frames back to the file. Returns false if any
  /// write failed.
  bool FlushAll();

  size_t capacity() const { return capacity_; }
  size_t pages_cached() const { return map_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Frame {
    int64_t page_id = -1;
    int pins = 0;
    bool dirty = false;
    // Intrusive LRU list over frame indices (-1 = none). Head = most
    // recently used.
    int lru_prev = -1;
    int lru_next = -1;
    std::vector<unsigned char> payload;
  };

  void LruPushFront(int frame);
  void LruRemove(int frame);
  /// Frees the least recently used unpinned frame; -1 if none.
  int EvictOne();

  PagedFile* file_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<int> free_frames_;
  std::unordered_map<int64_t, int> map_;  // page id -> frame index
  int lru_head_ = -1;
  int lru_tail_ = -1;
  Stats stats_;
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_BUFFER_POOL_H_
