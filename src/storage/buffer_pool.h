#ifndef RSMI_STORAGE_BUFFER_POOL_H_
#define RSMI_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/storage_backend.h"

namespace rsmi {

/// An LRU buffer pool over a StorageBackend (a PagedFile, or the mmap
/// backend): the main-memory cache that sits between the query
/// algorithms' block accesses and the disk. The paper evaluates with "no
/// buffering assumed"; the pool makes the buffered regime measurable too
/// (bench_ablation_buffer_pool sweeps the pool size from one page to the
/// whole file).
///
/// Usage: Pin() returns the frame payload for a page, faulting it in from
/// disk on a miss; Unpin() releases it (with `dirty=true` if modified).
/// Unpinned frames are evicted in LRU order; dirty frames are written back
/// on eviction and on FlushAll().
///
/// Internally synchronized: Pin/Unpin/FlushAll/stats may be called from
/// any number of threads (the block-access hook runs on every query
/// thread under the concurrent-reads contract of SpatialIndex). A single
/// mutex serializes frame management — the pool models one disk arm, so
/// contention here is the simulated storage bottleneck, not a bug.
class BufferPool {
 public:
  /// Statistics since construction or ResetStats().
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 1.0 : static_cast<double>(hits) / total;
    }
  };

  /// The pool holds at most `capacity` pages of `backend` (>= 1). The
  /// backend must outlive the pool.
  BufferPool(StorageBackend* backend, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Why a Pin returned nullptr.
  enum class PinFailure {
    kNone,       // pin succeeded
    kIoError,    // read or write-back failed
    kAllPinned,  // every frame is pinned right now (transient)
  };

  /// Pins page `id` and returns its payload (payload_size() bytes), or
  /// nullptr on I/O failure / invalid id / all frames pinned (`why`, if
  /// non-null, says which). Never blocks. A page may be pinned
  /// recursively; every Pin must be matched by an Unpin.
  unsigned char* Pin(int64_t page_id, PinFailure* why = nullptr);

  /// Like Pin, but when every frame is momentarily pinned by other
  /// threads, waits for an Unpin and retries instead of failing — the
  /// right call for concurrent readers doing short pin/unpin cycles
  /// (the DiskBackedBlocks access hook). Still returns nullptr on real
  /// I/O errors. Deadlocks if the caller itself holds all pins.
  unsigned char* PinBlocking(int64_t page_id);

  /// Releases one pin of `page_id`; `dirty` marks the frame for
  /// write-back. Unbalanced Unpins are ignored.
  void Unpin(int64_t page_id, bool dirty = false);

  /// Writes all dirty frames back to the file. Returns false if any
  /// write failed.
  bool FlushAll();

  size_t capacity() const { return capacity_; }
  size_t pages_cached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  /// Snapshot of the counters (by value: the pool may be concurrently
  /// updating them).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats{};
  }

 private:
  struct Frame {
    int64_t page_id = -1;
    int pins = 0;
    bool dirty = false;
    // Intrusive LRU list over frame indices (-1 = none). Head = most
    // recently used.
    int lru_prev = -1;
    int lru_next = -1;
    std::vector<unsigned char> payload;
  };

  void LruPushFront(int frame);
  void LruRemove(int frame);
  /// Frees the least recently used unpinned frame; -1 if none (sets
  /// `*io_failed` when the blocker was a failed write-back, not pins).
  int EvictOne(bool* io_failed);
  /// Pin body; mu_ must be held.
  unsigned char* PinLocked(int64_t page_id, PinFailure* why);

  /// Serializes all frame/LRU/stats state below (see class comment).
  mutable std::mutex mu_;
  /// Signaled whenever a pin is released or a frame is freed, so
  /// PinBlocking waiters can retry.
  std::condition_variable unpin_cv_;
  StorageBackend* file_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<int> free_frames_;
  std::unordered_map<int64_t, int> map_;  // page id -> frame index
  int lru_head_ = -1;
  int lru_tail_ = -1;
  Stats stats_;
  /// Process-wide mirrors of stats_ (bufferpool.* in the global
  /// MetricsRegistry), so cache behavior shows up in kStats and
  /// `rsmi_cli stats` without plumbing pool pointers around. Resolved
  /// once at construction; recording is lock-free. Unlike stats_, the
  /// global counters aggregate across every pool in the process and are
  /// never reset by ResetStats().
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_writebacks_;
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_BUFFER_POOL_H_
