#include "storage/disk_backed_blocks.h"

#include <cstring>

namespace rsmi {
namespace {

/// Page payload layout: [int32 count][pad to 8][count * PointEntry].
constexpr size_t kBlockHeaderBytes = 8;

size_t PayloadSizeFor(int capacity) {
  return kBlockHeaderBytes +
         static_cast<size_t>(capacity) * sizeof(PointEntry);
}

}  // namespace

DiskBackedBlocks::DiskBackedBlocks(const BlockStore* store)
    : store_(store) {}

std::unique_ptr<DiskBackedBlocks> DiskBackedBlocks::Attach(
    const BlockStore* store, const std::string& path, size_t pool_pages) {
  std::unique_ptr<DiskBackedBlocks> db(new DiskBackedBlocks(store));
  if (!db->file_.Create(path, PayloadSizeFor(store->capacity()))) {
    return nullptr;
  }
  db->encode_buf_.assign(db->file_.payload_size(), 0);
  const int n = static_cast<int>(store->NumBlocks());
  for (int id = 0; id < n; ++id) {
    if (db->file_.AllocPage() != id) return nullptr;
    db->EncodeBlock(id, db->encode_buf_.data());
    if (!db->file_.WritePage(id, db->encode_buf_.data())) return nullptr;
  }
  db->pages_mapped_ = n;
  if (!db->file_.Sync()) return nullptr;
  db->file_.ResetCounters();
  db->pool_ = std::make_unique<BufferPool>(&db->file_, pool_pages);
  DiskBackedBlocks* raw = db.get();
  store->SetAccessHook([raw](int id) { raw->OnAccess(id); });
  return db;
}

DiskBackedBlocks::~DiskBackedBlocks() {
  store_->SetAccessHook(nullptr);
  pool_.reset();  // flush before the file closes
}

void DiskBackedBlocks::EncodeBlock(int id, unsigned char* buf) const {
  const Block& b = store_->Peek(id);
  std::memset(buf, 0, file_.payload_size());
  const int32_t count = static_cast<int32_t>(b.entries.size());
  std::memcpy(buf, &count, sizeof(count));
  if (count > 0) {
    std::memcpy(buf + kBlockHeaderBytes, b.entries.data(),
                static_cast<size_t>(count) * sizeof(PointEntry));
  }
}

bool DiskBackedBlocks::EnsurePage(int id) {
  std::lock_guard<std::mutex> lock(map_mu_);
  while (pages_mapped_ <= id) {
    const int64_t page = file_.AllocPage();
    if (page < 0) return false;
    EncodeBlock(static_cast<int>(page), encode_buf_.data());
    if (!file_.WritePage(page, encode_buf_.data())) return false;
    ++pages_mapped_;
  }
  return true;
}

void DiskBackedBlocks::OnAccess(int id) {
  if (!EnsurePage(id)) {
    io_error_ = true;
    return;
  }
  // Blocking pin: with more query threads than pool frames, every frame
  // can be transiently pinned by peers mid-cycle — that is back-pressure,
  // not an I/O error, so wait for an Unpin instead of failing.
  unsigned char* payload = pool_->PinBlocking(id);
  if (payload == nullptr) {
    io_error_ = true;
    return;
  }
  pool_->Unpin(id, /*dirty=*/false);
}

bool DiskBackedBlocks::FlushBlock(int id) {
  if (!EnsurePage(id)) return false;
  std::lock_guard<std::mutex> lock(map_mu_);
  EncodeBlock(id, encode_buf_.data());
  if (!file_.WritePage(id, encode_buf_.data())) return false;
  // Drop any stale cached copy by re-reading through the pool on next use:
  // simplest correct policy is to refresh the frame in place if cached.
  if (unsigned char* payload = pool_->Pin(id); payload != nullptr) {
    std::memcpy(payload, encode_buf_.data(), file_.payload_size());
    pool_->Unpin(id, /*dirty=*/false);
  }
  return true;
}

bool DiskBackedBlocks::ReadBlockFromDisk(int id,
                                         std::vector<PointEntry>* out) {
  if (id < 0 || id >= pages_mapped_) return false;
  std::vector<unsigned char> buf(file_.payload_size());
  if (!file_.ReadPage(id, buf.data())) return false;
  int32_t count = 0;
  std::memcpy(&count, buf.data(), sizeof(count));
  if (count < 0 ||
      static_cast<size_t>(count) >
          (file_.payload_size() - kBlockHeaderBytes) / sizeof(PointEntry)) {
    return false;
  }
  out->resize(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(out->data(), buf.data() + kBlockHeaderBytes,
                static_cast<size_t>(count) * sizeof(PointEntry));
  }
  return true;
}

}  // namespace rsmi
