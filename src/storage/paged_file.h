#ifndef RSMI_STORAGE_PAGED_FILE_H_
#define RSMI_STORAGE_PAGED_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "storage/storage_backend.h"

namespace rsmi {

/// A binary file of fixed-size pages — the external-memory substrate the
/// paper's storage model assumes (Section 3: "points storing in external
/// storage (e.g., a hard drive) in blocks of capacity B"; Section 6.1: "it
/// is straightforward to place the data blocks in external memory").
///
/// Every page carries a trailing CRC-32 of its payload, so torn writes and
/// corruption are detected at read time instead of silently corrupting
/// query answers. Reads and writes are counted; the BufferPool divides
/// these counters by the logical block accesses to report cache hit rates.
///
/// Internally synchronized: page I/O (AllocPage/WritePage/ReadPage/Sync)
/// may be called from any number of threads — required because the
/// BufferPool (under its own lock) and DiskBackedBlocks' lazy page
/// mapping (under another) both drive the same file from concurrent
/// query threads. One mutex serializes the shared FILE* and scratch
/// buffer; it models a single disk arm, like the pool. Open/Create/Close
/// remain exclusive-setup operations.
class PagedFile : public StorageBackend {
 public:
  /// Page payload bytes available to callers (page size minus checksum).
  static constexpr size_t kChecksumBytes = sizeof(uint32_t);

  PagedFile() = default;
  ~PagedFile() override;

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Creates (truncating) a paged file at `path` whose pages hold
  /// `payload_size` caller bytes each. Returns false on I/O error.
  bool Create(const std::string& path, size_t payload_size);

  /// Opens an existing paged file; reads the header to recover the page
  /// geometry. Returns false on I/O error or header mismatch.
  bool Open(const std::string& path);

  /// Flushes and closes; safe to call twice.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  size_t payload_size() const override { return payload_size_; }
  uint64_t num_pages() const override { return num_pages_; }
  const std::string& path() const { return path_; }

  /// Appends a zeroed page and returns its id.
  int64_t AllocPage();

  /// Writes `payload_size` bytes to page `id` (with a fresh checksum).
  bool WritePage(int64_t id, const void* payload) override;

  /// Reads page `id` into `payload` (`payload_size` bytes) and verifies
  /// the checksum. Returns false on I/O error or checksum mismatch.
  bool ReadPage(int64_t id, void* payload) override;

  /// Flushes libc buffers to the OS.
  bool Sync() override;

  /// Physical I/O counters (reads/writes of data pages since open/reset).
  uint64_t page_reads() const {
    return page_reads_.load(std::memory_order_relaxed);
  }
  uint64_t page_writes() const {
    return page_writes_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_writes_.store(0, std::memory_order_relaxed);
  }

  /// On-disk layout: [header page][data page 0][data page 1]...
  /// Header: magic, payload size, page count, header checksum. Public so
  /// alternate backends over the same file format (MmapPageBackend) can
  /// parse it without reimplementing the geometry.
  struct Header {
    uint64_t magic = 0;
    uint64_t payload_size = 0;
    uint64_t num_pages = 0;
    uint32_t crc = 0;
  };
  static constexpr uint64_t kMagic = 0x52534D4950414745ull;  // "RSMIPAGE"

 private:
  bool WriteHeader();
  size_t PageBytes() const { return payload_size_ + kChecksumBytes; }
  long PageOffset(int64_t id) const {
    return static_cast<long>(sizeof(Header) +
                             static_cast<size_t>(id) * PageBytes());
  }

  /// Serializes the FILE* position, scratch_, and num_pages_ (see class
  /// comment).
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  size_t payload_size_ = 0;
  uint64_t num_pages_ = 0;
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_writes_{0};
  std::vector<unsigned char> scratch_;  // one page, payload + checksum
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_PAGED_FILE_H_
