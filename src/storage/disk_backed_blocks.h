#ifndef RSMI_STORAGE_DISK_BACKED_BLOCKS_H_
#define RSMI_STORAGE_DISK_BACKED_BLOCKS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/block_store.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace rsmi {

/// Puts a BlockStore's data blocks on disk: every block becomes one page
/// of a PagedFile, and an access hook routes every counted block access
/// through an LRU BufferPool, so the paper's "# block accesses" cost model
/// becomes real page reads with a configurable cache in front.
///
/// The in-memory BlockStore remains the source of truth for query answers
/// (exactly as the paper runs everything in main memory and reports block
/// accesses as the external-memory cost indicator); this adapter adds the
/// physical layer so hit rates, disk reads, and cold/warm query times can
/// be measured for any index. See examples/external_memory.cpp and
/// bench_ablation_buffer_pool.
///
/// Blocks created after Attach (insertion overflow blocks) get pages
/// lazily on first access; call FlushBlock after mutating a block to keep
/// the on-disk image current.
class DiskBackedBlocks {
 public:
  /// Dumps every block of `store` into a fresh paged file at `path` and
  /// installs the access hook. `pool_pages` sizes the buffer pool (>= 1).
  /// Returns nullptr on I/O failure. `store` must outlive the result.
  static std::unique_ptr<DiskBackedBlocks> Attach(const BlockStore* store,
                                                  const std::string& path,
                                                  size_t pool_pages);

  /// Uninstalls the hook and closes the file.
  ~DiskBackedBlocks();

  DiskBackedBlocks(const DiskBackedBlocks&) = delete;
  DiskBackedBlocks& operator=(const DiskBackedBlocks&) = delete;

  /// Re-writes the page of block `id` from the current in-memory content
  /// (call after an insertion or deletion touched the block).
  bool FlushBlock(int id);

  /// Decodes the on-disk page of block `id` (verifying its checksum) —
  /// lets tests prove the disk image matches memory without going through
  /// the pool.
  bool ReadBlockFromDisk(int id, std::vector<PointEntry>* out);

  /// True once `Corrupted()` has observed a checksum/read failure during
  /// hooked accesses (the hook itself cannot return errors).
  bool io_error() const { return io_error_.load(std::memory_order_relaxed); }

  BufferPool::Stats pool_stats() const { return pool_->stats(); }
  void ResetStats() {
    pool_->ResetStats();
    file_.ResetCounters();
  }
  uint64_t disk_reads() const { return file_.page_reads(); }
  uint64_t disk_writes() const { return file_.page_writes(); }
  size_t pool_pages() const { return pool_->capacity(); }

 private:
  explicit DiskBackedBlocks(const BlockStore* store);

  /// Serializes block `id` into `buf` (payload_size bytes).
  void EncodeBlock(int id, unsigned char* buf) const;
  /// Appends pages until block `id` has one.
  bool EnsurePage(int id);
  void OnAccess(int id);

  const BlockStore* store_;
  PagedFile file_;
  std::unique_ptr<BufferPool> pool_;
  /// Serializes lazy page mapping (EnsurePage) and encode_buf_ reuse —
  /// the access hook runs on every query thread, so OnAccess must be
  /// safe to enter concurrently (the pool has its own lock).
  std::mutex map_mu_;
  int64_t pages_mapped_ = 0;
  std::atomic<bool> io_error_{false};
  std::vector<unsigned char> encode_buf_;
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_DISK_BACKED_BLOCKS_H_
