#include "storage/paged_file.h"

#include <cstring>

#include "common/crc32.h"

namespace rsmi {

PagedFile::~PagedFile() { Close(); }

bool PagedFile::Create(const std::string& path, size_t payload_size) {
  Close();
  if (payload_size == 0) return false;
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return false;
  file_ = f;
  path_ = path;
  payload_size_ = payload_size;
  num_pages_ = 0;
  scratch_.assign(PageBytes(), 0);
  if (!WriteHeader()) {
    Close();
    return false;
  }
  return true;
}

bool PagedFile::Open(const std::string& path) {
  Close();
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  Header h;
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    return false;
  }
  Header expect = h;
  expect.crc = 0;
  if (h.magic != kMagic ||
      h.crc != Crc32(&expect, sizeof(expect)) ||
      h.payload_size == 0) {
    std::fclose(f);
    return false;
  }
  file_ = f;
  path_ = path;
  payload_size_ = h.payload_size;
  num_pages_ = h.num_pages;
  scratch_.assign(PageBytes(), 0);
  return true;
}

void PagedFile::Close() {
  if (file_ != nullptr) {
    WriteHeader();
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool PagedFile::WriteHeader() {
  Header h;
  h.magic = kMagic;
  h.payload_size = payload_size_;
  h.num_pages = num_pages_;
  h.crc = 0;
  h.crc = Crc32(&h, sizeof(h));
  if (std::fseek(file_, 0, SEEK_SET) != 0) return false;
  return std::fwrite(&h, sizeof(h), 1, file_) == 1;
}

int64_t PagedFile::AllocPage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return -1;
  const int64_t id = static_cast<int64_t>(num_pages_);
  std::memset(scratch_.data(), 0, scratch_.size());
  const uint32_t crc = Crc32(scratch_.data(), payload_size_);
  std::memcpy(scratch_.data() + payload_size_, &crc, sizeof(crc));
  if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0) return -1;
  if (std::fwrite(scratch_.data(), scratch_.size(), 1, file_) != 1) return -1;
  ++num_pages_;
  return id;
}

bool PagedFile::WritePage(int64_t id, const void* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || id < 0 ||
      static_cast<uint64_t>(id) >= num_pages_) {
    return false;
  }
  std::memcpy(scratch_.data(), payload, payload_size_);
  const uint32_t crc = Crc32(scratch_.data(), payload_size_);
  std::memcpy(scratch_.data() + payload_size_, &crc, sizeof(crc));
  if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0) return false;
  if (std::fwrite(scratch_.data(), scratch_.size(), 1, file_) != 1) {
    return false;
  }
  ++page_writes_;
  return true;
}

bool PagedFile::ReadPage(int64_t id, void* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || id < 0 ||
      static_cast<uint64_t>(id) >= num_pages_) {
    return false;
  }
  if (std::fseek(file_, PageOffset(id), SEEK_SET) != 0) return false;
  if (std::fread(scratch_.data(), scratch_.size(), 1, file_) != 1) {
    return false;
  }
  uint32_t stored = 0;
  std::memcpy(&stored, scratch_.data() + payload_size_, sizeof(stored));
  if (stored != Crc32(scratch_.data(), payload_size_)) return false;
  std::memcpy(payload, scratch_.data(), payload_size_);
  ++page_reads_;
  return true;
}

bool PagedFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  return std::fflush(file_) == 0;
}

}  // namespace rsmi
