#ifndef RSMI_STORAGE_BLOCK_STORE_H_
#define RSMI_STORAGE_BLOCK_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "core/query_context.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "io/serializer.h"

namespace rsmi {

/// A stored data point: its coordinates plus the caller-assigned record id
/// (standing in for the "pointer to the data object" of the paper).
struct PointEntry {
  Point pt;
  int64_t id = -1;
};

/// Copy-on-write entry storage for a Block. Two states:
///
///  - owned: a plain std::vector<PointEntry> (every built or mutated
///    block). This is the only state the pre-xmem code ever saw.
///  - borrowed: a read-only span into an externally owned byte image (the
///    mmap-backed lazy load path, Deserializer::borrowable()). Reads are
///    zero-copy — the kernel faults the span's pages in on first touch —
///    and the image owner (xmem::MappedContainer) must outlive the store.
///
/// Every non-const accessor first Materialize()s the span into an owned
/// vector, so mutation never writes through the read-only mapping. The
/// BlockStore mutation contract (exclusive access) makes that transition
/// race-free; concurrent const reads of an un-mutated block never
/// materialize and stay zero-copy.
class EntryList {
 public:
  EntryList() = default;
  EntryList(const EntryList&) = default;
  EntryList(EntryList&&) noexcept = default;
  EntryList& operator=(const EntryList&) = default;
  EntryList& operator=(EntryList&&) noexcept = default;

  /// Adopts `v` (copy or move depending on the argument). Replaces the
  /// historical `blk.entries = some_vector` assignments.
  EntryList& operator=(std::vector<PointEntry> v) {
    own_ = std::move(v);
    ext_ = nullptr;
    ext_n_ = 0;
    return *this;
  }

  /// Moves the entries out as a plain vector (split/rebuild code does
  /// `std::vector<PointEntry> pts = std::move(blk.entries);`). Leaves this
  /// list empty.
  operator std::vector<PointEntry>() && {
    Materialize();
    ext_ = nullptr;
    ext_n_ = 0;
    return std::move(own_);
  }

  /// Points this list at `n` externally owned entries (no copy). Caller
  /// guarantees the span outlives the list or any copy of it.
  void Borrow(const PointEntry* data, size_t n) {
    own_.clear();
    ext_ = data;
    ext_n_ = n;
  }
  bool borrowed() const { return ext_ != nullptr; }

  size_t size() const { return ext_ != nullptr ? ext_n_ : own_.size(); }
  bool empty() const { return size() == 0; }
  const PointEntry* data() const {
    return ext_ != nullptr ? ext_ : own_.data();
  }
  const PointEntry* begin() const { return data(); }
  const PointEntry* end() const { return data() + size(); }
  const PointEntry& operator[](size_t i) const { return data()[i]; }
  const PointEntry& back() const { return data()[size() - 1]; }

  PointEntry* begin() {
    Materialize();
    return own_.data();
  }
  PointEntry* end() {
    Materialize();
    return own_.data() + own_.size();
  }
  PointEntry& operator[](size_t i) {
    Materialize();
    return own_[i];
  }
  PointEntry& back() {
    Materialize();
    return own_.back();
  }

  void push_back(const PointEntry& e) {
    Materialize();
    own_.push_back(e);
  }
  void pop_back() {
    Materialize();
    own_.pop_back();
  }
  void clear() {
    own_.clear();
    ext_ = nullptr;
    ext_n_ = 0;
  }
  void reserve(size_t n) {
    Materialize();
    own_.reserve(n);
  }
  template <typename It>
  void assign(It first, It last) {
    ext_ = nullptr;
    ext_n_ = 0;
    own_.assign(first, last);
  }
  PointEntry* erase(PointEntry* pos) {
    const size_t i = static_cast<size_t>(pos - own_.data());
    own_.erase(own_.begin() + static_cast<ptrdiff_t>(i));
    return own_.data() + i;
  }
  PointEntry* erase(PointEntry* first, PointEntry* last) {
    const size_t i = static_cast<size_t>(first - own_.data());
    const size_t j = static_cast<size_t>(last - own_.data());
    own_.erase(own_.begin() + static_cast<ptrdiff_t>(i),
               own_.begin() + static_cast<ptrdiff_t>(j));
    return own_.data() + i;
  }

 private:
  void Materialize() {
    if (ext_ == nullptr) return;
    own_.assign(ext_, ext_ + ext_n_);
    ext_ = nullptr;
    ext_n_ = 0;
  }

  std::vector<PointEntry> own_;
  const PointEntry* ext_ = nullptr;
  size_t ext_n_ = 0;
};

/// A data block of capacity B (Section 3: "points stored in external
/// storage in blocks of capacity B"). Blocks are chained with prev/next
/// pointers so queries can scan ranges of consecutive blocks (Section 3.2:
/// "in each block, we further store pointers to its preceding and
/// subsequent blocks").
struct Block {
  EntryList entries;
  int32_t prev = -1;
  int32_t next = -1;
  /// Stable position key in the chain. Build-time blocks get 0,1,2,...;
  /// overflow blocks created by insertions receive the midpoint of their
  /// neighbors' keys, so "does block a precede block b" stays answerable
  /// after arbitrary insertions and subtree rebuilds.
  double seq = 0.0;
  /// True for blocks created by data insertions. Such blocks do not count
  /// towards the model error bounds (Section 5).
  bool inserted = false;
  /// Curve-value range of the entries (used by ZM to skip blocks cheaply).
  uint64_t cv_lo = 0;
  uint64_t cv_hi = 0;
  /// Bounding rectangle of the entries (used by RSMIa and kNN pruning).
  Rect mbr = Rect::Empty();
};

/// Append-only block arena.
///
/// All indices in this repository store their data points in a BlockStore
/// and report block accesses as the external-memory cost indicator,
/// exactly like the paper's "# block accesses" metric. Reading a block
/// through Access() charges the caller's QueryContext; structural
/// mutation through MutableBlock() does not (mutators charge their
/// context explicitly where the paper's cost model says an access
/// happens).
///
/// Thread-safety contract: all read methods (Access, Peek, scans, SeqOf,
/// NumBlocks) may run concurrently from any number of threads, because
/// each caller accumulates costs into its own QueryContext. The legacy
/// index-wide counter survives as a lock-free aggregate fed by
/// AggregateAccesses(). Mutation (Alloc, MutableBlock, Unlink/Splice,
/// ReadFrom) requires exclusive access, as does installing an access
/// hook.
class BlockStore {
 public:
  explicit BlockStore(int capacity) : capacity_(capacity) {}

  int capacity() const { return capacity_; }

  /// Appends a new (non-inserted) block at the tail of the chain and
  /// returns its id. Build code allocates blocks in global curve order, so
  /// ids double as the paper's build-time block ids. The seq key is kept
  /// strictly above the current tail's (overflow splices and run moves may
  /// have pushed the tail's seq past the id counter).
  int Alloc() {
    const int id = static_cast<int>(blocks_.size());
    Block b;
    b.seq = tail_ >= 0 ? std::max(static_cast<double>(id),
                                  blocks_[tail_].seq + 1.0)
                       : static_cast<double>(id);
    b.prev = tail_;
    if (tail_ >= 0) blocks_[tail_].next = id;
    blocks_.push_back(std::move(b));
    tail_ = id;
    return id;
  }

  /// Creates an overflow block spliced immediately after block `after`
  /// (Section 5, insertion case 2). Marked `inserted`.
  int AllocInsertedAfter(int after) {
    const int id = static_cast<int>(blocks_.size());
    Block b;
    b.inserted = true;
    const int nxt = blocks_[after].next;
    b.prev = after;
    b.next = nxt;
    b.seq = nxt >= 0 ? (blocks_[after].seq + blocks_[nxt].seq) / 2.0
                     : blocks_[after].seq + 1.0;
    blocks_.push_back(std::move(b));
    blocks_[after].next = id;
    if (nxt >= 0) {
      blocks_[nxt].prev = id;
    } else {
      tail_ = id;
    }
    return id;
  }

  /// Counted read access, charged to the caller's QueryContext. When an
  /// access hook is installed (external-memory mode, see
  /// DiskBackedBlocks), the hook runs first and performs the physical
  /// page fetch that this logical access models.
  const Block& Access(int id, QueryContext& ctx) const {
    ++ctx.block_accesses;
    if (access_hook_) access_hook_(id);
    return blocks_[id];
  }

  /// Installs (or clears, with nullptr) a callback invoked on every
  /// counted block access with the block id. DiskBackedBlocks uses this to
  /// route accesses through a buffer pool over a paged file, turning the
  /// paper's "# block accesses" cost model into real disk reads. Must not
  /// race in-flight queries (attach/detach while readers are quiescent).
  using AccessHook = std::function<void(int)>;
  void SetAccessHook(AccessHook hook) const {
    access_hook_ = std::move(hook);
  }

  /// Uncounted structural access (see class comment).
  Block& MutableBlock(int id) { return blocks_[id]; }
  const Block& Peek(int id) const { return blocks_[id]; }

  size_t NumBlocks() const { return blocks_.size(); }

  /// Legacy index-wide counter (compatibility shim).
  ///
  /// \deprecated New code should read costs from its own QueryContext.
  /// The aggregate only exists so pre-context callers (the figure benches
  /// and examples) keep seeing one unified number: the SpatialIndex
  /// convenience wrappers fold every finished context in here via
  /// AggregateAccesses(). Thread-safe (relaxed atomic) — but two threads
  /// interleaving queries against the same index obviously cannot
  /// attribute the aggregate to "their" queries; that is exactly what
  /// QueryContext is for.
  uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  /// Folds `n` block accesses from a finished QueryContext into the
  /// legacy aggregate.
  void AggregateAccesses(uint64_t n) const {
    accesses_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Visits blocks from `begin` to `end` (inclusive) following the chain
  /// without counting accesses — callers decide what counts (e.g. the
  /// exact RSMIa traversal checks per-block MBRs "for free" because they
  /// live in the parent node page, then Access()es only matching blocks).
  ///
  /// The scan includes inserted blocks spliced anywhere inside the range,
  /// *including the overflow run of `end` itself*: it stops at the first
  /// non-inserted block past `end`, not at the first seq key past `end`.
  /// Handles begin/end given in either order. `fn(id, block)` returns true
  /// to stop early.
  template <typename Fn>
  void ScanChainRaw(int begin, int end, Fn&& fn) const {
    if (blocks_.empty() || begin < 0 || end < 0) return;
    if (blocks_[begin].seq > blocks_[end].seq) std::swap(begin, end);
    const double stop = blocks_[end].seq;
    for (int cur = begin; cur >= 0; cur = blocks_[cur].next) {
      if (!blocks_[cur].inserted && blocks_[cur].seq > stop) break;
      if (fn(cur, blocks_[cur])) return;
    }
  }

  /// Counted scan over [begin, end] (see ScanChainRaw for range semantics).
  template <typename Fn>
  void ScanRange(int begin, int end, QueryContext& ctx, Fn&& fn) const {
    ScanChainRaw(begin, end, [&](int id, const Block&) {
      fn(Access(id, ctx));
      return false;
    });
  }

  /// Counted scan that stops early when `fn` returns true.
  template <typename Fn>
  void ScanRangeUntil(int begin, int end, QueryContext& ctx,
                      Fn&& fn) const {
    ScanChainRaw(begin, end,
                 [&](int id, const Block&) { return fn(Access(id, ctx)); });
  }

  /// Detaches the chain range [first, last] (given in chain order) and
  /// re-links its neighbors. The range keeps its internal links. Used when
  /// a subtree rebuild replaces a run of blocks (RSMIr, Section 6.2.5).
  void UnlinkRange(int first, int last) {
    const int before = blocks_[first].prev;
    const int after = blocks_[last].next;
    if (before >= 0) blocks_[before].next = after;
    if (after >= 0) blocks_[after].prev = before;
    if (tail_ == last) tail_ = before;
    blocks_[first].prev = -1;
    blocks_[last].next = -1;
  }

  /// Splices a detached run [run_first..run_last] between `before` and
  /// `after` (either may be -1 for head/tail), assigning evenly spaced seq
  /// keys so chain-order comparisons stay correct.
  void SpliceRun(int run_first, int run_last, int before, int after) {
    int count = 0;
    for (int cur = run_first; cur >= 0; cur = blocks_[cur].next) {
      ++count;
      if (cur == run_last) break;
    }
    blocks_[run_first].prev = before;
    blocks_[run_last].next = after;
    if (before >= 0) blocks_[before].next = run_first;
    if (after >= 0) blocks_[after].prev = run_last;
    if (after < 0) tail_ = run_last;
    double lo = 0.0;
    double hi = 0.0;
    if (before >= 0 && after >= 0) {
      lo = blocks_[before].seq;
      hi = blocks_[after].seq;
    } else if (before >= 0) {
      lo = blocks_[before].seq;
      hi = lo + count + 1;
    } else if (after >= 0) {
      hi = blocks_[after].seq;
      lo = hi - count - 1;
    } else {
      lo = -1.0;
      hi = static_cast<double>(count);
    }
    int i = 1;
    for (int cur = run_first; cur >= 0; cur = blocks_[cur].next, ++i) {
      blocks_[cur].seq = lo + (hi - lo) * i / (count + 1);
      if (cur == run_last) break;
    }
  }

  /// Seq key of a block (chain-order comparisons across leaves).
  double SeqOf(int id) const { return blocks_[id].seq; }

  /// Fixed per-block metadata bytes in the on-disk v4 layout (entry
  /// count + chain links + seq + inserted + curve range + mbr).
  static constexpr size_t kDiskMetaBytes =
      sizeof(uint64_t) + sizeof(int32_t) * 2 + sizeof(double) + 1 +
      sizeof(uint64_t) * 2 + sizeof(Rect);

  /// Binary persistence (index save/load, io/serializer.h).
  ///
  /// Container-v4 layout, designed for lazy mmap loads: a dense metadata
  /// run (one kDiskMetaBytes record per block) comes first, then an
  /// explicit pad to the next 8-byte file offset, then every block's
  /// entries concatenated as one contiguous PointEntry region. Opening a
  /// store therefore faults in only the small metadata run; entry pages
  /// fault on first access. The pad byte count is stored (not derived)
  /// because the writer knows its absolute file offset — SaveIndex and
  /// nested shard saves share one Serializer — while a payload reader
  /// only sees payload-relative offsets.
  void WriteTo(Serializer& out) const {
    out.WritePod(capacity_);
    out.WritePod(tail_);
    out.WritePod<uint64_t>(blocks_.size());
    for (const Block& b : blocks_) {
      out.WritePod<uint64_t>(b.entries.size());
      out.WritePod(b.prev);
      out.WritePod(b.next);
      out.WritePod(b.seq);
      out.WritePod(b.inserted);
      out.WritePod(b.cv_lo);
      out.WritePod(b.cv_hi);
      out.WritePod(b.mbr);
    }
    const uint8_t pad = static_cast<uint8_t>(
        (alignof(PointEntry) - (out.size() + 1) % alignof(PointEntry)) %
        alignof(PointEntry));
    out.WritePod(pad);
    for (uint8_t i = 0; i < pad; ++i) out.WritePod<uint8_t>(0);
    for (const Block& b : blocks_) {
      if (!b.entries.empty()) {
        out.WriteBytes(b.entries.data(),
                       b.entries.size() * sizeof(PointEntry));
      }
    }
  }

  bool ReadFrom(Deserializer& in) {
    if (!in.ReadPod(&capacity_) || !in.ReadPod(&tail_)) return false;
    uint64_t n = 0;
    if (!in.ReadPod(&n)) return false;
    // Each block costs exactly kDiskMetaBytes in the metadata run; bound
    // the count by the remaining bytes before allocating.
    if (n > in.remaining() / kDiskMetaBytes) {
      return in.Fail("block count exceeds remaining data");
    }
    blocks_.assign(n, Block{});
    std::vector<uint64_t> counts(n, 0);
    uint64_t total_entries = 0;
    size_t i = 0;
    for (Block& b : blocks_) {
      if (!in.ReadPod(&counts[i]) || !in.ReadPod(&b.prev) ||
          !in.ReadPod(&b.next) || !in.ReadPod(&b.seq) ||
          !in.ReadPod(&b.inserted) || !in.ReadPod(&b.cv_lo) ||
          !in.ReadPod(&b.cv_hi) || !in.ReadPod(&b.mbr)) {
        return false;
      }
      // Chain pointers index blocks_: reject out-of-range ids here so a
      // CRC-valid crafted payload cannot plant an OOB chain walk.
      if (!ValidBlockRef(b.prev) || !ValidBlockRef(b.next)) {
        return in.Fail("block chain pointer out of range");
      }
      // Per-count check before accumulating so a crafted huge count can
      // neither overflow the sum nor trigger a giant allocation.
      if (counts[i] > in.remaining() / sizeof(PointEntry)) {
        return in.Fail("entry count exceeds remaining data");
      }
      total_entries += counts[i];
      if (total_entries > in.remaining() / sizeof(PointEntry)) {
        return in.Fail("entry count exceeds remaining data");
      }
      ++i;
    }
    uint8_t pad = 0;
    if (!in.ReadPod(&pad) || !in.Skip(pad)) return false;
    if (total_entries > in.remaining() / sizeof(PointEntry)) {
      return in.Fail("entry count exceeds remaining data");
    }
    // Zero-copy when the image outlives us (mmap path) and the writer's
    // pad landed the region on a PointEntry boundary; otherwise copy.
    // The alignment check is belt-and-braces for images assembled at odd
    // offsets (hand-built test payloads): misalignment degrades to a
    // copy, never to UB.
    const bool borrow =
        in.borrowable() &&
        reinterpret_cast<uintptr_t>(in.cursor()) % alignof(PointEntry) == 0;
    for (size_t k = 0; k < n; ++k) {
      const size_t bytes = static_cast<size_t>(counts[k]) *
                           sizeof(PointEntry);
      if (borrow) {
        blocks_[k].entries.Borrow(
            reinterpret_cast<const PointEntry*>(in.cursor()),
            static_cast<size_t>(counts[k]));
        if (!in.Skip(bytes)) return false;
      } else {
        std::vector<PointEntry> own(static_cast<size_t>(counts[k]));
        if (bytes > 0 && !in.ReadBytes(own.data(), bytes)) return false;
        blocks_[k].entries = std::move(own);
      }
    }
    if (capacity_ < 1 || !ValidBlockRef(tail_)) {
      return in.Fail("block store header fields out of range");
    }
    accesses_ = 0;
    return true;
  }

  /// True when `id` is -1 (no block) or a valid index into the store.
  bool ValidBlockRef(int id) const {
    return id >= -1 && id < static_cast<int>(blocks_.size());
  }

  /// Bytes occupied if blocks were written to disk at fixed size:
  /// capacity slots plus a fixed header per block.
  size_t SizeBytes() const {
    constexpr size_t kHeaderBytes =
        sizeof(int32_t) * 2 + sizeof(double) + sizeof(uint64_t) * 2 +
        sizeof(Rect) + sizeof(bool);
    return blocks_.size() *
           (static_cast<size_t>(capacity_) * sizeof(PointEntry) +
            kHeaderBytes);
  }

 private:
  int capacity_;
  int tail_ = -1;
  std::vector<Block> blocks_;
  /// Legacy aggregate only — per-query costs live in QueryContexts.
  mutable std::atomic<uint64_t> accesses_{0};
  mutable AccessHook access_hook_;
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_BLOCK_STORE_H_
