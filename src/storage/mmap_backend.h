#ifndef RSMI_STORAGE_MMAP_BACKEND_H_
#define RSMI_STORAGE_MMAP_BACKEND_H_

#include <atomic>
#include <memory>
#include <string>

#include "io/mapped_file.h"
#include "storage/paged_file.h"
#include "storage/storage_backend.h"

namespace rsmi {

/// Read-only StorageBackend over the PagedFile on-disk format, served
/// from an mmap instead of stdio: ReadPage is one memcpy out of the
/// mapping (zero syscalls; the kernel faults absent pages in on touch),
/// PrefetchPage forwards to madvise(MADV_WILLNEED) so the pool — or the
/// xmem AsyncPrefetcher — can overlap model inference with readahead.
/// Page checksums are verified on every read, exactly like PagedFile.
///
/// WritePage always fails (read_only() is true): mutation of a mapped
/// file belongs to the write-behind log, not the query path.
class MmapPageBackend : public StorageBackend {
 public:
  /// Maps the paged file at `path` and validates its header. nullptr
  /// with a diagnostic in `*error` (if non-null) on open/mmap failure, a
  /// foreign file, or a file shorter than its declared page count.
  static std::unique_ptr<MmapPageBackend> Open(const std::string& path,
                                               std::string* error = nullptr);

  size_t payload_size() const override { return payload_size_; }
  uint64_t num_pages() const override { return num_pages_; }
  bool ReadPage(int64_t id, void* payload) override;
  bool WritePage(int64_t id, const void* payload) override;
  bool Sync() override { return true; }
  bool read_only() const override { return true; }
  void PrefetchPage(int64_t id) override;

  const MappedFile& mapping() const { return *map_; }

  /// Physical prefetch hints issued (for the xmem metrics).
  uint64_t prefetches() const {
    return prefetches_.load(std::memory_order_relaxed);
  }

 private:
  MmapPageBackend(std::unique_ptr<MappedFile> map, size_t payload_size,
                  uint64_t num_pages)
      : map_(std::move(map)),
        payload_size_(payload_size),
        num_pages_(num_pages) {}

  size_t PageOffset(int64_t id) const {
    return sizeof(PagedFile::Header) +
           static_cast<size_t>(id) *
               (payload_size_ + PagedFile::kChecksumBytes);
  }

  std::unique_ptr<MappedFile> map_;
  size_t payload_size_ = 0;
  uint64_t num_pages_ = 0;
  std::atomic<uint64_t> prefetches_{0};
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_MMAP_BACKEND_H_
