#ifndef RSMI_STORAGE_STORAGE_BACKEND_H_
#define RSMI_STORAGE_STORAGE_BACKEND_H_

#include <cstddef>
#include <cstdint>

namespace rsmi {

/// Page-granular storage abstraction behind the BufferPool. Two
/// implementations ship: PagedFile (synchronous buffered stdio with a
/// CRC per page — the original disk-backed mode) and MmapPageBackend
/// (read-only zero-syscall reads from an mmap of the same file format,
/// with kernel readahead steered via PrefetchPage). The pool neither
/// knows nor cares which one it sits on; bench_ablation_buffer_pool and
/// the xmem benches swap backends to measure the difference.
///
/// Implementations must tolerate concurrent calls from any number of
/// threads (the pool serializes frame management but issues page I/O
/// from whichever query thread faulted).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Caller-visible bytes per page.
  virtual size_t payload_size() const = 0;
  virtual uint64_t num_pages() const = 0;

  /// Reads page `id` into `payload` (payload_size() bytes), verifying
  /// integrity. False on I/O error, bad id, or checksum mismatch.
  virtual bool ReadPage(int64_t id, void* payload) = 0;

  /// Writes page `id`. A read-only backend returns false without
  /// touching storage.
  virtual bool WritePage(int64_t id, const void* payload) = 0;

  /// Flushes buffered writes to the OS. True (trivially) on read-only
  /// backends.
  virtual bool Sync() = 0;

  /// True when WritePage always fails (the pool's write-back path is a
  /// caller bug against such a backend; queries never write back).
  virtual bool read_only() const { return false; }

  /// Hints that page `id` will be read soon. Best-effort, default no-op;
  /// the mmap backend forwards to madvise(MADV_WILLNEED).
  virtual void PrefetchPage(int64_t id) { (void)id; }
};

}  // namespace rsmi

#endif  // RSMI_STORAGE_STORAGE_BACKEND_H_
