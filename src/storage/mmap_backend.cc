#include "storage/mmap_backend.h"

#include <cstring>

#include "common/crc32.h"

namespace rsmi {

std::unique_ptr<MmapPageBackend> MmapPageBackend::Open(
    const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) -> std::unique_ptr<MmapPageBackend> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  std::unique_ptr<MappedFile> map = MappedFile::Open(path, error);
  if (map == nullptr) return nullptr;
  if (map->size() < sizeof(PagedFile::Header)) {
    return fail(path + " is too short to be a paged file");
  }
  PagedFile::Header h;
  std::memcpy(&h, map->data(), sizeof(h));
  PagedFile::Header expect = h;
  expect.crc = 0;
  if (h.magic != PagedFile::kMagic ||
      h.crc != Crc32(&expect, sizeof(expect)) || h.payload_size == 0) {
    return fail(path + " is not a paged file (bad header)");
  }
  const size_t page_bytes =
      static_cast<size_t>(h.payload_size) + PagedFile::kChecksumBytes;
  const size_t need = sizeof(h) + static_cast<size_t>(h.num_pages) *
                                      page_bytes;
  if (h.num_pages > (map->size() - sizeof(h)) / page_bytes ||
      map->size() < need) {
    return fail(path + " is shorter than its declared page count");
  }
  return std::unique_ptr<MmapPageBackend>(new MmapPageBackend(
      std::move(map), static_cast<size_t>(h.payload_size), h.num_pages));
}

bool MmapPageBackend::ReadPage(int64_t id, void* payload) {
  if (id < 0 || static_cast<uint64_t>(id) >= num_pages_) return false;
  const uint8_t* page = map_->data() + PageOffset(id);
  uint32_t stored = 0;
  std::memcpy(&stored, page + payload_size_, sizeof(stored));
  if (stored != Crc32(page, payload_size_)) return false;
  std::memcpy(payload, page, payload_size_);
  return true;
}

bool MmapPageBackend::WritePage(int64_t, const void*) { return false; }

void MmapPageBackend::PrefetchPage(int64_t id) {
  if (id < 0 || static_cast<uint64_t>(id) >= num_pages_) return;
  map_->Prefetch(PageOffset(id),
                 payload_size_ + PagedFile::kChecksumBytes);
  prefetches_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rsmi
