#include "storage/buffer_pool.h"

#include <algorithm>

namespace rsmi {

BufferPool::BufferPool(StorageBackend* backend, size_t capacity)
    : file_(backend), capacity_(std::max<size_t>(1, capacity)) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  m_hits_ = &reg.GetCounter("bufferpool.hits");
  m_misses_ = &reg.GetCounter("bufferpool.misses");
  m_evictions_ = &reg.GetCounter("bufferpool.evictions");
  m_writebacks_ = &reg.GetCounter("bufferpool.writebacks");
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].payload.resize(file_->payload_size());
    free_frames_.push_back(static_cast<int>(capacity_ - 1 - i));
  }
}

BufferPool::~BufferPool() { FlushAll(); }

void BufferPool::LruPushFront(int frame) {
  Frame& f = frames_[frame];
  f.lru_prev = -1;
  f.lru_next = lru_head_;
  if (lru_head_ >= 0) frames_[lru_head_].lru_prev = frame;
  lru_head_ = frame;
  if (lru_tail_ < 0) lru_tail_ = frame;
}

void BufferPool::LruRemove(int frame) {
  Frame& f = frames_[frame];
  if (f.lru_prev >= 0) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else if (lru_head_ == frame) {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next >= 0) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else if (lru_tail_ == frame) {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = -1;
  f.lru_next = -1;
}

int BufferPool::EvictOne(bool* io_failed) {
  // Walk from the LRU tail towards the head for the first unpinned frame.
  for (int cur = lru_tail_; cur >= 0; cur = frames_[cur].lru_prev) {
    Frame& f = frames_[cur];
    if (f.pins > 0) continue;
    if (f.dirty) {
      if (!file_->WritePage(f.page_id, f.payload.data())) {
        if (io_failed != nullptr) *io_failed = true;
        return -1;
      }
      f.dirty = false;
      ++stats_.writebacks;
      m_writebacks_->Add();
    }
    LruRemove(cur);
    map_.erase(f.page_id);
    f.page_id = -1;
    ++stats_.evictions;
    m_evictions_->Add();
    return cur;
  }
  return -1;
}

unsigned char* BufferPool::PinLocked(int64_t page_id, PinFailure* why) {
  if (why != nullptr) *why = PinFailure::kNone;
  if (auto it = map_.find(page_id); it != map_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    LruRemove(it->second);
    LruPushFront(it->second);
    ++stats_.hits;
    m_hits_->Add();
    return f.payload.data();
  }
  int frame = -1;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    bool io_failed = false;
    frame = EvictOne(&io_failed);
    if (frame < 0) {
      if (why != nullptr) {
        *why = io_failed ? PinFailure::kIoError : PinFailure::kAllPinned;
      }
      return nullptr;
    }
  }
  ++stats_.misses;
  m_misses_->Add();
  Frame& f = frames_[frame];
  if (!file_->ReadPage(page_id, f.payload.data())) {
    free_frames_.push_back(frame);
    unpin_cv_.notify_one();  // the freed frame can serve a waiter
    if (why != nullptr) *why = PinFailure::kIoError;
    return nullptr;
  }
  f.page_id = page_id;
  f.pins = 1;
  f.dirty = false;
  map_.emplace(page_id, frame);
  LruPushFront(frame);
  return f.payload.data();
}

unsigned char* BufferPool::Pin(int64_t page_id, PinFailure* why) {
  std::lock_guard<std::mutex> lock(mu_);
  return PinLocked(page_id, why);
}

unsigned char* BufferPool::PinBlocking(int64_t page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    PinFailure why = PinFailure::kNone;
    unsigned char* payload = PinLocked(page_id, &why);
    if (payload != nullptr || why != PinFailure::kAllPinned) return payload;
    // Every frame is pinned by other threads mid-cycle; wait for one of
    // their Unpins and retry (the page may even be cached by then).
    unpin_cv_.wait(lock);
  }
}

void BufferPool::Unpin(int64_t page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(page_id);
  if (it == map_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pins > 0) --f.pins;
  f.dirty = f.dirty || dirty;
  if (f.pins == 0) unpin_cv_.notify_one();
}

bool BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool ok = true;
  for (Frame& f : frames_) {
    if (f.page_id >= 0 && f.dirty) {
      if (file_->WritePage(f.page_id, f.payload.data())) {
        f.dirty = false;
        ++stats_.writebacks;
        m_writebacks_->Add();
      } else {
        ok = false;
      }
    }
  }
  return ok && file_->Sync();
}

}  // namespace rsmi
