#ifndef RSMI_SFC_HILBERT_CURVE_H_
#define RSMI_SFC_HILBERT_CURVE_H_

#include <cstdint>

namespace rsmi {

/// Hilbert curve value of cell (x, y) on a 2^order x 2^order grid
/// (Faloutsos & Roseman [10]). Iterative quadrant-rotation algorithm.
/// Requires 1 <= order <= 31 so the result fits in 62 bits.
inline uint64_t HilbertEncode(uint32_t x, uint32_t y, int order) {
  uint64_t d = 0;
  uint64_t xx = x;
  uint64_t yy = y;
  for (uint64_t s = 1ull << (order - 1); s > 0; s >>= 1) {
    const uint64_t rx = (xx & s) ? 1 : 0;
    const uint64_t ry = (yy & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the sub-curve is in canonical orientation.
    if (ry == 0) {
      if (rx == 1) {
        xx = s - 1 - xx;
        yy = s - 1 - yy;
      }
      const uint64_t t = xx;
      xx = yy;
      yy = t;
    }
  }
  return d;
}

/// Inverse of HilbertEncode.
inline void HilbertDecode(uint64_t d, int order, uint32_t* x, uint32_t* y) {
  uint64_t xx = 0;
  uint64_t yy = 0;
  uint64_t t = d;
  for (uint64_t s = 1; s < (1ull << order); s <<= 1) {
    const uint64_t rx = 1 & (t / 2);
    const uint64_t ry = 1 & (t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        xx = s - 1 - xx;
        yy = s - 1 - yy;
      }
      const uint64_t tmp = xx;
      xx = yy;
      yy = tmp;
    }
    xx += s * rx;
    yy += s * ry;
    t /= 4;
  }
  *x = static_cast<uint32_t>(xx);
  *y = static_cast<uint32_t>(yy);
}

}  // namespace rsmi

#endif  // RSMI_SFC_HILBERT_CURVE_H_
