#ifndef RSMI_SFC_CURVE_H_
#define RSMI_SFC_CURVE_H_

#include <cstdint>
#include <string>

#include "sfc/hilbert_curve.h"
#include "sfc/z_curve.h"

namespace rsmi {

/// The two space-filling curves evaluated in the paper. RSMI defaults to
/// the Hilbert curve ("as these yield better query performance than
/// Z-curves", Section 6.1); the ZM baseline uses the Z-curve by design.
enum class CurveType {
  kZ,
  kHilbert,
};

/// Curve value of grid cell (x, y) on a 2^order x 2^order grid.
inline uint64_t CurveEncode(CurveType t, uint32_t x, uint32_t y, int order) {
  return t == CurveType::kZ ? ZEncode(x, y, order)
                            : HilbertEncode(x, y, order);
}

/// Inverse of CurveEncode.
inline void CurveDecode(CurveType t, uint64_t code, int order, uint32_t* x,
                        uint32_t* y) {
  if (t == CurveType::kZ) {
    ZDecode(code, order, x, y);
  } else {
    HilbertDecode(code, order, x, y);
  }
}

inline std::string CurveName(CurveType t) {
  return t == CurveType::kZ ? "Z" : "Hilbert";
}

}  // namespace rsmi

#endif  // RSMI_SFC_CURVE_H_
