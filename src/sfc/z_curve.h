#ifndef RSMI_SFC_Z_CURVE_H_
#define RSMI_SFC_Z_CURVE_H_

#include <cstdint>

namespace rsmi {

/// Spreads the low 32 bits of `v` so that bit i moves to bit 2i
/// (the classic Morton "part 1 by 1" bit trick).
inline uint64_t SpreadBits(uint64_t v) {
  v &= 0xFFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Inverse of SpreadBits: collects every other bit back into the low half.
inline uint64_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return v;
}

/// Z-curve (Morton) value of cell (x, y) on a 2^order x 2^order grid
/// (Orenstein & Merrett [35]). Bits above `order` are ignored.
/// Requires 1 <= order <= 32.
inline uint64_t ZEncode(uint32_t x, uint32_t y, int order) {
  const uint64_t mask =
      order >= 32 ? 0xFFFFFFFFull : ((1ull << order) - 1);
  return SpreadBits(x & mask) | (SpreadBits(y & mask) << 1);
}

/// Inverse of ZEncode.
inline void ZDecode(uint64_t code, int /*order*/, uint32_t* x, uint32_t* y) {
  *x = static_cast<uint32_t>(CompactBits(code));
  *y = static_cast<uint32_t>(CompactBits(code >> 1));
}

}  // namespace rsmi

#endif  // RSMI_SFC_Z_CURVE_H_
