#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/rng.h"

namespace rsmi {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Hashable bit pattern of a position, for exact-duplicate detection.
struct PositionHash {
  size_t operator()(const Point& p) const {
    uint64_t hx;
    uint64_t hy;
    static_assert(sizeof(double) == sizeof(uint64_t));
    std::memcpy(&hx, &p.x, sizeof(hx));
    std::memcpy(&hy, &p.y, sizeof(hy));
    return std::hash<uint64_t>()(hx * 0x9E3779B97F4A7C15ull ^ hy);
  }
};
struct PositionEq {
  bool operator()(const Point& a, const Point& b) const {
    return SamePosition(a, b);
  }
};

double ClampUnit(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

std::string DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "Uniform";
    case Distribution::kNormal:
      return "Normal";
    case Distribution::kSkewed:
      return "Skewed";
    case Distribution::kTiger:
      return "Tiger";
    case Distribution::kOsm:
      return "OSM";
  }
  return "?";
}

std::vector<Point> GenerateUniform(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = Point{rng.Uniform(), rng.Uniform()};
  DeduplicatePositions(&pts, seed ^ 0xD1CEull);
  return pts;
}

std::vector<Point> GenerateNormal(size_t n, uint64_t seed, double stddev) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    // Rejection-sample into the unit square so the distribution keeps its
    // shape instead of piling up mass on the boundary.
    do {
      p = Point{rng.Normal(0.5, stddev), rng.Normal(0.5, stddev)};
    } while (p.x < 0.0 || p.x > 1.0 || p.y < 0.0 || p.y > 1.0);
  }
  DeduplicatePositions(&pts, seed ^ 0xD1CEull);
  return pts;
}

std::vector<Point> GenerateSkewed(size_t n, uint64_t seed, double alpha) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.Uniform();
    p.y = std::pow(rng.Uniform(), alpha);
  }
  DeduplicatePositions(&pts, seed ^ 0xD1CEull);
  return pts;
}

std::vector<Point> GenerateTigerLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  // A random "road network": segments whose endpoints are biased towards a
  // handful of hub locations, with points scattered along the segments.
  const size_t num_hubs = std::max<size_t>(4, n / 20000);
  std::vector<Point> hubs(num_hubs);
  for (auto& h : hubs) h = Point{rng.Uniform(), rng.Uniform()};

  const size_t num_segments = std::max<size_t>(16, n / 500);
  struct Segment {
    Point a, b;
    double len;
  };
  std::vector<Segment> segs(num_segments);
  std::vector<double> cum(num_segments);
  double total = 0.0;
  for (size_t i = 0; i < num_segments; ++i) {
    const Point& hub = hubs[rng.UniformInt(0, num_hubs - 1)];
    Segment s;
    s.a = Point{ClampUnit(hub.x + rng.Normal(0.0, 0.08)),
                ClampUnit(hub.y + rng.Normal(0.0, 0.08))};
    const double angle = rng.Uniform(0.0, kTwoPi);
    const double len = std::abs(rng.Normal(0.0, 0.05)) + 0.005;
    s.b = Point{ClampUnit(s.a.x + len * std::cos(angle)),
                ClampUnit(s.a.y + len * std::sin(angle))};
    s.len = Dist(s.a, s.b) + 1e-9;
    total += s.len;
    cum[i] = total;
    segs[i] = s;
  }

  std::vector<Point> pts(n);
  for (auto& p : pts) {
    // Pick a segment with probability proportional to its length.
    const double r = rng.Uniform(0.0, total);
    const size_t si = static_cast<size_t>(
        std::lower_bound(cum.begin(), cum.end(), r) - cum.begin());
    const Segment& s = segs[std::min(si, num_segments - 1)];
    const double t = rng.Uniform();
    p.x = ClampUnit(s.a.x + t * (s.b.x - s.a.x) + rng.Normal(0.0, 0.002));
    p.y = ClampUnit(s.a.y + t * (s.b.y - s.a.y) + rng.Normal(0.0, 0.002));
  }
  DeduplicatePositions(&pts, seed ^ 0xD1CEull);
  return pts;
}

std::vector<Point> GenerateOsmLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  // Power-law-sized Gaussian clusters (cities/towns) plus a 10% sparse
  // uniform background (rural POIs).
  const size_t num_clusters = std::max<size_t>(8, n / 2000);
  struct Cluster {
    Point center;
    double sigma;
  };
  std::vector<Cluster> clusters(num_clusters);
  std::vector<double> cum(num_clusters);
  double total = 0.0;
  for (size_t i = 0; i < num_clusters; ++i) {
    clusters[i].center = Point{rng.Uniform(), rng.Uniform()};
    clusters[i].sigma = 0.002 + 0.02 * rng.Uniform() * rng.Uniform();
    // Pareto-like weight: few big cities, many small towns.
    const double w = std::pow(rng.Uniform() + 1e-3, -0.8);
    total += w;
    cum[i] = total;
  }

  std::vector<Point> pts(n);
  for (auto& p : pts) {
    if (rng.Uniform() < 0.10) {
      p = Point{rng.Uniform(), rng.Uniform()};
      continue;
    }
    const double r = rng.Uniform(0.0, total);
    const size_t ci = static_cast<size_t>(
        std::lower_bound(cum.begin(), cum.end(), r) - cum.begin());
    const Cluster& c = clusters[std::min(ci, num_clusters - 1)];
    p.x = ClampUnit(rng.Normal(c.center.x, c.sigma));
    p.y = ClampUnit(rng.Normal(c.center.y, c.sigma));
  }
  DeduplicatePositions(&pts, seed ^ 0xD1CEull);
  return pts;
}

std::vector<Point> GenerateDataset(Distribution d, size_t n, uint64_t seed) {
  switch (d) {
    case Distribution::kUniform:
      return GenerateUniform(n, seed);
    case Distribution::kNormal:
      return GenerateNormal(n, seed);
    case Distribution::kSkewed:
      return GenerateSkewed(n, seed);
    case Distribution::kTiger:
      return GenerateTigerLike(n, seed);
    case Distribution::kOsm:
      return GenerateOsmLike(n, seed);
  }
  return {};
}

void DeduplicatePositions(std::vector<Point>* pts, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<Point, PositionHash, PositionEq> seen;
  seen.reserve(pts->size() * 2);
  for (auto& p : *pts) {
    while (!seen.insert(p).second) {
      p.x = ClampUnit(p.x + rng.Uniform(-1e-9, 1e-9));
      p.y = ClampUnit(p.y + rng.Uniform(-1e-9, 1e-9));
    }
  }
}

}  // namespace rsmi
