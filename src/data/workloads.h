#ifndef RSMI_DATA_WORKLOADS_H_
#define RSMI_DATA_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace rsmi {

/// Window queries "generated following the data distribution"
/// (Section 6.1): centers are sampled from the data points; each window
/// covers `area_fraction` of the unit data space with width/height ratio
/// `aspect_ratio`, clamped to stay within the unit square.
std::vector<Rect> GenerateWindowQueries(const std::vector<Point>& data,
                                        size_t count, double area_fraction,
                                        double aspect_ratio, uint64_t seed);

/// kNN/point query locations sampled from the data distribution. With
/// `perturb > 0`, each location is jittered so queries don't coincide with
/// indexed points.
std::vector<Point> GenerateQueryPoints(const std::vector<Point>& data,
                                       size_t count, uint64_t seed,
                                       double perturb = 0.0);

}  // namespace rsmi

#endif  // RSMI_DATA_WORKLOADS_H_
