#ifndef RSMI_DATA_GENERATORS_H_
#define RSMI_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace rsmi {

/// The five data distributions of the evaluation (Section 6.1, Table 2).
///
/// Uniform/Normal/Skewed reproduce the paper's synthetic generators.
/// Tiger/OSM substitute the real data sets, which are not available
/// offline, with synthetic equivalents that preserve the property the
/// experiments exercise — heavy, non-uniform spatial skew (DESIGN.md,
/// substitution #1):
///  * kTiger: points along a random network of line segments, mimicking
///    centers of geographic line features (roads, rivers).
///  * kOsm:   power-law-sized Gaussian clusters over a sparse uniform
///    background, mimicking POI clustering around towns and cities.
enum class Distribution {
  kUniform,
  kNormal,
  kSkewed,
  kTiger,
  kOsm,
};

/// All distributions in the paper's presentation order.
inline const std::vector<Distribution>& AllDistributions() {
  static const std::vector<Distribution> kAll = {
      Distribution::kUniform, Distribution::kNormal, Distribution::kSkewed,
      Distribution::kTiger, Distribution::kOsm};
  return kAll;
}

std::string DistributionName(Distribution d);

/// n i.i.d. uniform points in the unit square.
std::vector<Point> GenerateUniform(size_t n, uint64_t seed);

/// n points from a normal distribution centered at (0.5, 0.5), resampled
/// into the unit square.
std::vector<Point> GenerateNormal(size_t n, uint64_t seed,
                                  double stddev = 0.17);

/// The paper's Skewed generator: uniform points whose y-coordinates are
/// raised to the power alpha (alpha = 4 by default, following HRR [37,38]).
std::vector<Point> GenerateSkewed(size_t n, uint64_t seed,
                                  double alpha = 4.0);

/// Tiger-like synthetic data (see Distribution::kTiger).
std::vector<Point> GenerateTigerLike(size_t n, uint64_t seed);

/// OSM-like synthetic data (see Distribution::kOsm).
std::vector<Point> GenerateOsmLike(size_t n, uint64_t seed);

/// Dispatch on the enum; every generator returns exactly n points in the
/// unit square with no two points sharing both coordinates (the paper's
/// standing assumption, Section 3.1).
std::vector<Point> GenerateDataset(Distribution d, size_t n, uint64_t seed);

/// Enforces the distinct-positions assumption by deterministically
/// jittering duplicate positions within the unit square.
void DeduplicatePositions(std::vector<Point>* pts, uint64_t seed);

}  // namespace rsmi

#endif  // RSMI_DATA_GENERATORS_H_
