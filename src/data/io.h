#ifndef RSMI_DATA_IO_H_
#define RSMI_DATA_IO_H_

#include <string>
#include <vector>

#include "geom/point.h"

namespace rsmi {

/// Loads points from a text file with one "x<sep>y" pair per line
/// (separator: comma, semicolon, tab, or spaces — the format of common
/// OSM/Tiger point extracts). Lines that do not parse (headers, comments)
/// are skipped. Returns false when the file cannot be opened.
bool LoadPointsCsv(const std::string& path, std::vector<Point>* out);

/// Writes points as "x,y" lines. Returns false on I/O failure.
bool SavePointsCsv(const std::string& path, const std::vector<Point>& pts);

/// Loads points from the compact binary format written by
/// SavePointsBinary: a uint64 count followed by count {double x, double y}
/// records (native endianness).
bool LoadPointsBinary(const std::string& path, std::vector<Point>* out);

/// Writes the binary format (fast round-trip for large data sets).
bool SavePointsBinary(const std::string& path,
                      const std::vector<Point>& pts);

}  // namespace rsmi

#endif  // RSMI_DATA_IO_H_
