#ifndef RSMI_DATA_GROUND_TRUTH_H_
#define RSMI_DATA_GROUND_TRUTH_H_

#include <algorithm>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace rsmi {

/// Brute-force window query — the ground truth against which index recall
/// is measured (Section 6.2.3).
inline std::vector<Point> BruteForceWindow(const std::vector<Point>& data,
                                           const Rect& w) {
  std::vector<Point> out;
  for (const Point& p : data) {
    if (w.Contains(p)) out.push_back(p);
  }
  return out;
}

/// Brute-force k nearest neighbors (ties broken arbitrarily, matching the
/// recall definition of Section 6.2.4: |returned ∩ true kNN| / k).
inline std::vector<Point> BruteForceKnn(const std::vector<Point>& data,
                                        const Point& q, size_t k) {
  std::vector<size_t> idx(data.size());
  for (size_t i = 0; i < data.size(); ++i) idx[i] = i;
  k = std::min(k, data.size());
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](size_t a, size_t b) {
                      return SquaredDist(data[a], q) < SquaredDist(data[b], q);
                    });
  std::vector<Point> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(data[idx[i]]);
  return out;
}

/// True when `data` contains a point at exactly the position of `q`.
inline bool BruteForceContains(const std::vector<Point>& data,
                               const Point& q) {
  for (const Point& p : data) {
    if (SamePosition(p, q)) return true;
  }
  return false;
}

/// Recall of an (approximate) result set vs the ground truth, by position.
/// Both sets are assumed duplicate-free.
inline double RecallOf(const std::vector<Point>& result,
                       const std::vector<Point>& truth) {
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  // O(|result| * |truth|) is fine at test scale; benches use sorted merge.
  for (const Point& t : truth) {
    for (const Point& r : result) {
      if (SamePosition(r, t)) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / truth.size();
}

}  // namespace rsmi

#endif  // RSMI_DATA_GROUND_TRUTH_H_
