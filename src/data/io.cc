#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rsmi {
namespace {

/// Parses "x<sep>y" with a permissive separator set.
bool ParseLine(const char* line, Point* p) {
  char* end = nullptr;
  const double x = std::strtod(line, &end);
  if (end == line) return false;
  while (*end == ',' || *end == ';' || *end == '\t' || *end == ' ') ++end;
  const char* ystart = end;
  const double y = std::strtod(ystart, &end);
  if (end == ystart) return false;
  *p = Point{x, y};
  return true;
}

}  // namespace

bool LoadPointsCsv(const std::string& path, std::vector<Point>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    Point p;
    if (ParseLine(line, &p)) out->push_back(p);
  }
  std::fclose(f);
  return true;
}

bool SavePointsCsv(const std::string& path, const std::vector<Point>& pts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& p : pts) {
    std::fprintf(f, "%.17g,%.17g\n", p.x, p.y);
  }
  return std::fclose(f) == 0;
}

bool LoadPointsBinary(const std::string& path, std::vector<Point>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) {
    std::fclose(f);
    return false;
  }
  const size_t base = out->size();
  out->resize(base + count);
  const size_t read =
      std::fread(out->data() + base, sizeof(Point), count, f);
  std::fclose(f);
  if (read != count) {
    out->resize(base + read);
    return false;
  }
  return true;
}

bool SavePointsBinary(const std::string& path,
                      const std::vector<Point>& pts) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const uint64_t count = pts.size();
  bool ok = std::fwrite(&count, sizeof(count), 1, f) == 1;
  ok = ok && std::fwrite(pts.data(), sizeof(Point), pts.size(), f) ==
                 pts.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace rsmi
