#include "data/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rsmi {

std::vector<Rect> GenerateWindowQueries(const std::vector<Point>& data,
                                        size_t count, double area_fraction,
                                        double aspect_ratio, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(count);
  // aspect = width / height; area = width * height.
  const double width =
      std::min(1.0, std::sqrt(area_fraction * aspect_ratio));
  const double height = std::min(1.0, std::sqrt(area_fraction / aspect_ratio));
  for (size_t i = 0; i < count; ++i) {
    const Point& c = data[rng.UniformInt(0, data.size() - 1)];
    double lx = c.x - width / 2;
    double ly = c.y - height / 2;
    lx = std::max(0.0, std::min(lx, 1.0 - width));
    ly = std::max(0.0, std::min(ly, 1.0 - height));
    out.push_back(Rect{{lx, ly}, {lx + width, ly + height}});
  }
  return out;
}

std::vector<Point> GenerateQueryPoints(const std::vector<Point>& data,
                                       size_t count, uint64_t seed,
                                       double perturb) {
  Rng rng(seed);
  std::vector<Point> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point p = data[rng.UniformInt(0, data.size() - 1)];
    if (perturb > 0.0) {
      p.x = std::min(1.0, std::max(0.0, p.x + rng.Normal(0.0, perturb)));
      p.y = std::min(1.0, std::max(0.0, p.y + rng.Normal(0.0, perturb)));
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace rsmi
