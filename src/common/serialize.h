#ifndef RSMI_COMMON_SERIALIZE_H_
#define RSMI_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <vector>

namespace rsmi {

/// Minimal binary (de)serialization helpers used by index persistence.
/// Native endianness; the format is a cache, not an interchange format.

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::fread(v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const uint64_t n = v.size();
  if (!WritePod(f, n)) return false;
  if (n == 0) return true;
  return std::fwrite(v.data(), sizeof(T), n, f) == n;
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t n = 0;
  if (!ReadPod(f, &n)) return false;
  v->resize(n);
  if (n == 0) return true;
  return std::fread(v->data(), sizeof(T), n, f) == n;
}

}  // namespace rsmi

#endif  // RSMI_COMMON_SERIALIZE_H_
