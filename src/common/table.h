#ifndef RSMI_COMMON_TABLE_H_
#define RSMI_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace rsmi {

/// Fixed-width plain-text table printer used by the benchmark harness to
/// emit paper-style result tables (one row per sweep point, one column per
/// index or metric).
class TablePrinter {
 public:
  /// `widths[i]` is the printed width of column i; the header row uses the
  /// same widths.
  TablePrinter(std::vector<std::string> header, std::vector<int> widths)
      : header_(std::move(header)), widths_(std::move(widths)) {}

  void PrintHeader() const {
    std::string line;
    for (size_t i = 0; i < header_.size(); ++i) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%-*s", widths_[i], header_[i].c_str());
      line += buf;
      if (i + 1 < header_.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    std::printf("%s\n", std::string(line.size(), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%-*s", widths_[i], cells[i].c_str());
      line += buf;
      if (i + 1 < cells.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  /// Formats a double with `digits` significant decimal places.
  static std::string Num(double v, int digits = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
  }

 private:
  std::vector<std::string> header_;
  std::vector<int> widths_;
};

}  // namespace rsmi

#endif  // RSMI_COMMON_TABLE_H_
