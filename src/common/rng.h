#ifndef RSMI_COMMON_RNG_H_
#define RSMI_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace rsmi {

/// Deterministic pseudo-random source.
///
/// Every stochastic choice in the library (data generation, weight
/// initialization, mini-batch shuffles, workload sampling) draws from an
/// explicitly seeded Rng so that builds, tests, and benchmarks are
/// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(gen_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Raw 64-bit draw.
  uint64_t NextU64() { return gen_(); }

  /// Access to the underlying engine (e.g. for std::shuffle).
  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace rsmi

#endif  // RSMI_COMMON_RNG_H_
