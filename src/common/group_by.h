#ifndef RSMI_COMMON_GROUP_BY_H_
#define RSMI_COMMON_GROUP_BY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace rsmi {

/// Calls `fn(indices, count)` once per group of equal keys over the
/// index range [0, n), where `key(i)` names element i's group. Grouping
/// is by stable sort (O(n log n)), so each group's indices preserve
/// input order — the batched descent paths use this to gather all
/// queries sitting on the same sub-model/bucket for one vectorized
/// evaluation. `scratch` is caller-owned so per-level callers reuse the
/// allocation.
template <typename KeyFn, typename GroupFn>
void ForEachGroupBy(size_t n, std::vector<uint32_t>* scratch, KeyFn key,
                    GroupFn fn) {
  std::vector<uint32_t>& order = *scratch;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return key(a) < key(b); });
  size_t begin = 0;
  while (begin < n) {
    size_t end = begin + 1;
    while (end < n && !(key(order[begin]) < key(order[end]))) ++end;
    fn(order.data() + begin, end - begin);
    begin = end;
  }
}

}  // namespace rsmi

#endif  // RSMI_COMMON_GROUP_BY_H_
