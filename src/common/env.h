#ifndef RSMI_COMMON_ENV_H_
#define RSMI_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace rsmi {

/// Reads an integer configuration knob from the environment, falling back
/// to `def` when the variable is unset or unparsable. Benchmarks use this
/// for scale knobs (e.g. RSMI_BENCH_N) so the same binaries reproduce the
/// paper's sweeps at laptop or server scale.
inline int64_t GetEnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

/// Reads a double configuration knob from the environment (see GetEnvInt64).
inline double GetEnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

/// Reads a string configuration knob from the environment (see GetEnvInt64).
inline std::string GetEnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

}  // namespace rsmi

#endif  // RSMI_COMMON_ENV_H_
