#ifndef RSMI_COMMON_CRC32_H_
#define RSMI_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rsmi {

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
/// page of a PagedFile against torn writes and bit rot. Table-driven,
/// byte-at-a-time; the table is built once on first use.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rsmi

#endif  // RSMI_COMMON_CRC32_H_
