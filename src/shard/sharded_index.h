#ifndef RSMI_SHARD_SHARDED_INDEX_H_
#define RSMI_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spatial_index.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "shard/shard_partitioner.h"
#include "storage/block_store.h"

namespace rsmi {

/// Build parameters of a ShardedIndex.
struct ShardedIndexConfig {
  /// Requested shard count (the effective count can be lower on
  /// degenerate data, see ShardPartitioner).
  int num_shards = 4;
  /// Worker threads for the parallel shard build. Shards build
  /// independently, so any thread count produces the same index.
  int build_threads = 1;
  /// Worker threads for intra-query fan-out: a single window or kNN
  /// query touching several shards runs the per-shard sub-queries
  /// concurrently when > 1 (off by default — batch-level parallelism in
  /// exec/ is usually the better use of cores under load; this helps
  /// latency of isolated large queries). Results are identical at any
  /// setting; the RSMI_SHARD_QUERY_THREADS environment variable
  /// overrides it at runtime. See WindowQuery/KnnQuery for the cost
  /// accounting caveat.
  int query_threads = 1;
  /// Partitioner knobs (its num_shards is overridden by `num_shards`).
  ShardPartitionerConfig partition;
};

/// Builds one shard's inner index over that shard's points. Invoked once
/// per shard, possibly from several build threads concurrently; it must
/// not touch shared mutable state. The factory wires this to MakeIndex,
/// so any index type in the repository can be sharded.
using ShardBuilder = std::function<std::unique_ptr<SpatialIndex>(
    const std::vector<Point>& pts, int shard)>;

/// Space-partitioned index: a cheap global ShardPartitioner routes every
/// point to one of K inner indices (any SpatialIndex, built via the
/// factory — sharded RSMI, sharded ZM, sharded R*, ...).
///
/// Build: the K inner indices are built in parallel on a thread pool
/// (shards are independent, so the result is identical at any thread
/// count — this is where a multi-core machine beats the monolithic
/// build).
///
/// Queries: point queries, inserts, and deletes route to the single
/// owning shard. Batched point lookups regroup per shard and go through
/// the inner PointQueryBatch, so learned shards keep their vectorized
/// level-synchronous descent. Window queries fan out to only the shards
/// whose region intersects the window. kNN fans out best-first over
/// shard regions sharing one result heap: once k candidates are held, a
/// shard whose region is farther than the current k-th distance is
/// skipped entirely. Both fan-outs can run their per-shard sub-queries
/// on a thread pool (`query_threads` / RSMI_SHARD_QUERY_THREADS) with
/// identical results — see the per-method docs.
///
/// Costs are charged to the caller's QueryContext exactly like any other
/// index; routing itself is free (an in-memory binary search, like
/// computing a grid cell coordinate). With one shard, every query —
/// results and counted costs — is identical to the inner index alone.
///
/// Thread-safety: the standard SpatialIndex contract (reads concurrent,
/// writes exclusive). Routing and fan-out read only immutable state.
class ShardedIndex : public SpatialIndex {
 public:
  ShardedIndex(const std::vector<Point>& pts, const ShardedIndexConfig& cfg,
               const ShardBuilder& builder);

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  std::string Name() const override;

  using SpatialIndex::PointQuery;
  using SpatialIndex::WindowQuery;
  using SpatialIndex::KnnQuery;
  std::optional<PointEntry> PointQuery(const Point& q,
                                       QueryContext& ctx) const override;
  /// Fans out to the shards whose region intersects `w`. With
  /// query_threads > 1 the per-shard sub-queries run concurrently, each
  /// on its own QueryContext, merged into `ctx` in shard order —
  /// results and counted costs identical to the sequential fan-out.
  std::vector<Point> WindowQuery(const Rect& w,
                                 QueryContext& ctx) const override;
  /// Best-first over shard regions sharing one result heap. With
  /// query_threads > 1 every candidate shard is queried concurrently and
  /// the per-shard top-k sets are merged in the same region-distance
  /// order — the *result* is identical, but counted costs can exceed the
  /// sequential path's, which skips shards already excluded by the k-th
  /// distance bound (a bound the parallel fan-out cannot know up front).
  std::vector<Point> KnnQuery(const Point& q, size_t k,
                              QueryContext& ctx) const override;

  /// Batched point lookup: groups the queries by owning shard and feeds
  /// each group through that shard's PointQueryBatch, so the vectorized
  /// descent of learned inner indices still kicks in. Results and
  /// per-call costs are identical to `n` scalar PointQuery calls.
  void PointQueryBatch(const Point* qs, size_t n, QueryContext& ctx,
                       std::optional<PointEntry>* out) const override;
  /// Per-op-attributed batch (see SpatialIndex): same per-shard routing,
  /// query i's costs charged to ctxs[i].
  void PointQueryBatch(const Point* qs, size_t n, QueryContext* ctxs,
                       std::optional<PointEntry>* out) const override;

  void Insert(const Point& p) override;
  bool Delete(const Point& p) override;

  /// Aggregated over all shards: num_points/size_bytes/num_models sum
  /// (size includes the shard directory: partitioner + per-shard region
  /// table), height is the tallest shard plus the routing level, and
  /// avg_query_depth is the descent-weighted aggregate of finished
  /// contexts (like RsmiIndex).
  IndexStats Stats() const override;

  /// Extends the base aggregation with the query-depth bookkeeping so
  /// sharded learned indices report avg_query_depth. Thread-safe.
  void AggregateQueryContext(const QueryContext& ctx) const override {
    store_.AggregateAccesses(ctx.block_accesses);
    invocations_.fetch_add(ctx.model_invocations,
                           std::memory_order_relaxed);
    descents_.fetch_add(ctx.descents, std::memory_order_relaxed);
  }

  /// The sharded index owns no data blocks itself — every point lives in
  /// a shard's store. This store is empty and serves only as the sink of
  /// the legacy context-free aggregate; to attach external memory, walk
  /// the shards (`shard(i).block_store()`).
  const BlockStore& block_store() const override { return store_; }

  /// Validates the partitioner, every shard's own structure, the region
  /// table, and the per-shard point-count bookkeeping.
  bool ValidateStructure(std::string* error) const override;

  /// Polymorphic persistence (io/index_container.h). SaveTo persists the
  /// shard directory (partitioner + region table) and then one complete
  /// nested container per shard — each carrying its own kind spec — so
  /// arbitrarily nested specs ("sharded<2>:sharded<2>:grid") round-trip
  /// through one file without rebuilding anything. LoadFrom dispatches
  /// every nested container back through the factory.
  std::string KindSpec() const override {
    // Not persistable when the inner kind is not (e.g. sharded KDB).
    const std::string inner = shards_[0]->KindSpec();
    if (inner.empty()) return "";
    return "sharded<" + std::to_string(num_shards()) + ">:" + inner;
  }
  bool SaveTo(Serializer& out) const override;
  bool LoadFrom(Deserializer& in) override;

  /// Uninitialized shell for the factory's load dispatch; invalid until
  /// LoadFrom succeeds on it.
  static std::unique_ptr<ShardedIndex> MakeLoadShell() {
    return std::unique_ptr<ShardedIndex>(new ShardedIndex(LoadTag{}));
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Effective intra-query fan-out width (config / env, clamped).
  int query_threads() const { return query_threads_; }
  const SpatialIndex& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }
  const ShardPartitioner& partitioner() const { return partitioner_; }
  /// Region (bounding rectangle) of the points currently routed to shard
  /// `i`; grows on insert, never shrinks on delete.
  const Rect& shard_region(int i) const {
    return regions_[static_cast<size_t>(i)];
  }

 private:
  struct LoadTag {};
  explicit ShardedIndex(LoadTag) {}  // shell filled by LoadFrom

  size_t DirectoryBytes() const {
    return sizeof(*this) + partitioner_.SizeBytes() +
           shards_.capacity() * sizeof(shards_[0]) +
           regions_.capacity() * sizeof(Rect);
  }

  ShardPartitioner partitioner_;
  std::vector<std::unique_ptr<SpatialIndex>> shards_;
  std::vector<Rect> regions_;
  size_t live_points_ = 0;
  /// Intra-query fan-out width (1 = sequential). Loaded indices resolve
  /// it from the environment in LoadFrom (it is a serving knob, not part
  /// of the persisted structure).
  int query_threads_ = 1;
  /// Legacy-aggregate sink (no data blocks; see block_store()).
  BlockStore store_{0};
  // Descent-weighted avg-depth aggregate fed from finished contexts
  // (queries record depth in their context, never here).
  mutable std::atomic<uint64_t> invocations_{0};
  mutable std::atomic<uint64_t> descents_{0};
};

}  // namespace rsmi

#endif  // RSMI_SHARD_SHARDED_INDEX_H_
