#ifndef RSMI_SHARD_SHARDED_INDEX_H_
#define RSMI_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/delta_buffer.h"
#include "core/spatial_index.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "shard/shard_partitioner.h"
#include "storage/block_store.h"

namespace rsmi {

/// Build parameters of a ShardedIndex.
struct ShardedIndexConfig {
  /// Requested shard count (the effective count can be lower on
  /// degenerate data, see ShardPartitioner).
  int num_shards = 4;
  /// Worker threads for the parallel shard build. Shards build
  /// independently, so any thread count produces the same index.
  int build_threads = 1;
  /// Worker threads for intra-query fan-out: a single window or kNN
  /// query touching several shards runs the per-shard sub-queries
  /// concurrently when > 1 (off by default — batch-level parallelism in
  /// exec/ is usually the better use of cores under load; this helps
  /// latency of isolated large queries). Results are identical at any
  /// setting; the RSMI_SHARD_QUERY_THREADS environment variable
  /// overrides it at runtime. See WindowQuery/KnnQuery for the cost
  /// accounting caveat.
  int query_threads = 1;
  /// Buffered ops a shard's active delta holds before it is frozen and
  /// merged into the shard's base structure. The
  /// RSMI_SHARD_DELTA_THRESHOLD environment variable overrides it at
  /// runtime (a serving knob, like query_threads).
  size_t delta_merge_threshold = 256;
  /// Run threshold-triggered merges on the background maintenance
  /// thread (the default). `false` merges inline on the writer thread
  /// that crossed the threshold — deterministic timing for tests.
  bool background_merge = true;
  /// Partitioner knobs (its num_shards is overridden by `num_shards`).
  ShardPartitionerConfig partition;
};

/// Builds one shard's inner index over that shard's points. Invoked once
/// per shard, possibly from several build threads concurrently; it must
/// not touch shared mutable state. The factory wires this to MakeIndex,
/// so any index type in the repository can be sharded.
using ShardBuilder = std::function<std::unique_ptr<SpatialIndex>(
    const std::vector<Point>& pts, int shard)>;

/// Space-partitioned index: a cheap global ShardPartitioner routes every
/// point to one of K inner indices (any SpatialIndex, built via the
/// factory — sharded RSMI, sharded ZM, sharded R*, ...).
///
/// Build: the K inner indices are built in parallel on a thread pool
/// (shards are independent, so the result is identical at any thread
/// count — this is where a multi-core machine beats the monolithic
/// build).
///
/// Queries: point queries and updates route to the single owning shard.
/// Batched point lookups regroup per shard and go through the inner
/// PointQueryBatch, so learned shards keep their vectorized
/// level-synchronous descent. Window queries fan out to only the shards
/// whose region intersects the window. kNN fans out best-first over
/// shard regions sharing one result heap: once k candidates are held, a
/// shard whose region is farther than the current k-th distance is
/// skipped entirely. Both fan-outs can run their per-shard sub-queries
/// on a thread pool (`query_threads` / RSMI_SHARD_QUERY_THREADS) with
/// identical results — see the per-method docs.
///
/// Concurrent updates (epoch/RCU publication): each shard's visible
/// state is one immutable Epoch — a shared_ptr to {base index, active
/// DeltaBuffer overlay, optional frozen "merging" overlay, region}.
/// Readers copy the epoch pointer (one tiny lock, never held across
/// work) and run entirely on that snapshot; in-flight queries finish on
/// their old epoch even while writers publish new ones, so readers
/// never block. Buffered writers (`WriteOptions::buffered`) serialize
/// per shard, copy-on-write the active delta, append their ops, and
/// publish a new epoch. When the active delta crosses
/// `delta_merge_threshold` it is frozen into the merging slot and the
/// background maintenance thread rebuilds the shard off the critical
/// path: it clones the base through the (bit-identical) persistence
/// round-trip, replays the frozen op log sequentially, and publishes
/// the merged base — the active delta accumulated meanwhile carries
/// over untouched. Every execution is observationally equivalent to
/// applying the same ops sequentially with immediate writes, including
/// the bytes SaveTo produces after FlushUpdates().
///
/// Delta overlay reads: a query consults the base snapshot and then the
/// overlay layers (merging below active). Buffered inserts surface with
/// the sentinel id -1 until merged (ids are assigned by the base
/// structure at merge time); kNN fetches `k + buffered deletions` base
/// candidates before filtering, so a heavily deleted region cannot
/// starve the result. Probing a non-empty delta layer charges one block
/// access to the caller's QueryContext (the overlay is one in-memory
/// buffer page, like RSMI's leaf insert buffer); empty layers charge
/// nothing, so with no buffered writes every cost equals the
/// pre-overlay sharded index exactly.
///
/// Costs are charged to the caller's QueryContext exactly like any
/// other index; routing itself is free (an in-memory binary search,
/// like computing a grid cell coordinate). With one shard, every query
/// — results and counted costs — is identical to the inner index alone.
///
/// Thread-safety: reads are always concurrent, with or without
/// concurrent buffered writers (SupportsConcurrentUpdates() is true).
/// Immediate (non-buffered) writes and structural maintenance
/// (Save/Load, ValidateStructure) keep the legacy exclusive-access
/// requirement.
class ShardedIndex : public SpatialIndex {
 public:
  ShardedIndex(const std::vector<Point>& pts, const ShardedIndexConfig& cfg,
               const ShardBuilder& builder);
  ~ShardedIndex() override;

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  std::string Name() const override;

  using SpatialIndex::PointQuery;
  using SpatialIndex::WindowQuery;
  using SpatialIndex::KnnQuery;
  std::optional<PointEntry> PointQuery(const Point& q,
                                       QueryContext& ctx) const override;
  /// Fans out to the shards whose region intersects `w`. With
  /// query_threads > 1 the per-shard sub-queries run concurrently, each
  /// on its own QueryContext, merged into `ctx` in shard order —
  /// results and counted costs identical to the sequential fan-out.
  std::vector<Point> WindowQuery(const Rect& w,
                                 QueryContext& ctx) const override;
  /// Best-first over shard regions sharing one result heap. With
  /// query_threads > 1 every candidate shard is queried concurrently and
  /// the per-shard top-k sets are merged in the same region-distance
  /// order — the *result* is identical, but counted costs can exceed the
  /// sequential path's, which skips shards already excluded by the k-th
  /// distance bound (a bound the parallel fan-out cannot know up front).
  std::vector<Point> KnnQuery(const Point& q, size_t k,
                              QueryContext& ctx) const override;

  /// Batched point lookup: groups the queries by owning shard and feeds
  /// each group through that shard's PointQueryBatch, so the vectorized
  /// descent of learned inner indices still kicks in. Results and
  /// per-call costs are identical to `n` scalar PointQuery calls.
  void PointQueryBatch(const Point* qs, size_t n, QueryContext& ctx,
                       std::optional<PointEntry>* out) const override;
  /// Per-op-attributed batch (see SpatialIndex): same per-shard routing,
  /// query i's costs charged to ctxs[i].
  void PointQueryBatch(const Point* qs, size_t n, QueryContext* ctxs,
                       std::optional<PointEntry>* out) const override;

  /// Buffered batches run concurrently with readers and other writers —
  /// true whenever the inner kind supports persistence (merging clones
  /// the shard base through the persistence round-trip; a kind that
  /// cannot persist stays writes-exclusive and buffered requests degrade
  /// to immediate application).
  bool SupportsConcurrentUpdates() const override;

  /// Synchronous fence: freezes and merges every shard's buffered delta
  /// (including any merge the background thread has in flight) before
  /// returning. Safe to call concurrently with readers.
  void FlushUpdates() override;

  /// Aggregated over all shards: num_points/size_bytes/num_models sum
  /// (size includes the shard directory: partitioner + per-shard region
  /// table + delta buffers), height is the tallest shard plus the
  /// routing level, and avg_query_depth is the descent-weighted
  /// aggregate of finished contexts (like RsmiIndex).
  IndexStats Stats() const override;

  /// Extends the base aggregation with the query-depth bookkeeping so
  /// sharded learned indices report avg_query_depth. Thread-safe.
  void AggregateQueryContext(const QueryContext& ctx) const override {
    store_.AggregateAccesses(ctx.block_accesses);
    invocations_.fetch_add(ctx.model_invocations,
                           std::memory_order_relaxed);
    descents_.fetch_add(ctx.descents, std::memory_order_relaxed);
  }

  /// The sharded index owns no data blocks itself — every point lives in
  /// a shard's store. This store is empty and serves only as the sink of
  /// the legacy context-free aggregate; to attach external memory, walk
  /// the shards (`shard(i).block_store()`).
  const BlockStore& block_store() const override { return store_; }

  /// Validates the partitioner, every shard's own structure, the region
  /// table, the delta overlays, and the visible point-count bookkeeping.
  /// Requires exclusive access (no concurrent writers or merges).
  bool ValidateStructure(std::string* error) const override;

  /// Polymorphic persistence (io/index_container.h). SaveTo persists the
  /// shard directory (partitioner + region table) and then, per shard,
  /// one complete nested container for the base index — each carrying
  /// its own kind spec, so arbitrarily nested specs
  /// ("sharded<2>:sharded<2>:grid") round-trip through one file without
  /// rebuilding anything — followed by the shard's buffered delta log
  /// (frozen ops first, then active ops, with the frozen count recorded
  /// since container v3), so a save taken under buffered writes loses
  /// nothing. LoadFrom dispatches every nested container back through
  /// the factory and replays the delta log into a fresh active buffer.
  /// Requires exclusive access.
  std::string KindSpec() const override;
  bool SaveTo(Serializer& out) const override;
  bool LoadFrom(Deserializer& in) override;

  /// Uninitialized shell for the factory's load dispatch; invalid until
  /// LoadFrom succeeds on it.
  static std::unique_ptr<ShardedIndex> MakeLoadShell() {
    return std::unique_ptr<ShardedIndex>(new ShardedIndex(LoadTag{}));
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Effective intra-query fan-out width (config / env, clamped).
  int query_threads() const { return query_threads_; }
  /// Active-delta size that freezes a shard for merging (config / env).
  size_t delta_merge_threshold() const { return delta_merge_threshold_; }
  /// Shard `i`'s current base structure. The reference is stable only
  /// while no merge can publish (exclusive access or after a fence);
  /// concurrent readers must snapshot epochs instead.
  const SpatialIndex& shard(int i) const {
    return *EpochOf(static_cast<size_t>(i))->base;
  }
  const ShardPartitioner& partitioner() const { return partitioner_; }
  /// Region (bounding rectangle) of the points currently routed to shard
  /// `i` — buffered inserts included; grows on insert, never shrinks on
  /// delete.
  Rect shard_region(int i) const {
    return EpochOf(static_cast<size_t>(i))->region;
  }
  /// Ops currently buffered (active + frozen) for shard `i`.
  size_t shard_delta_size(int i) const;

 protected:
  void InsertOne(const Point& p) override;
  bool DeleteOne(const Point& p) override;

  /// Routes each op to its owning shard (preserving per-shard arrival
  /// order). Buffered batches copy-on-write the shard's active delta and
  /// publish a new epoch — concurrent with readers; immediate batches
  /// mutate the base structure in place (exclusive access, byte-for-byte
  /// the pre-epoch behavior on a clean shard; a shard with buffered ops
  /// is drained first so arrival order is preserved).
  UpdateResult DoApplyUpdates(const UpdateBatch& batch,
                              const WriteOptions& opts) override;

 private:
  /// One shard's immutable published state. Readers run entirely on a
  /// snapshot of this; every mutation publishes a fresh Epoch.
  struct Epoch {
    std::shared_ptr<SpatialIndex> base;
    /// Active overlay — the delta writers append to (never null; empty
    /// on a clean shard). Semantics relative to merging-over-base.
    std::shared_ptr<const DeltaBuffer> delta;
    /// Frozen overlay being merged into a new base by the maintenance
    /// thread; null when no merge is pending. Semantics relative to
    /// base.
    std::shared_ptr<const DeltaBuffer> merging;
    Rect region = Rect::Empty();
  };

  struct Shard {
    /// Current epoch; epoch_mu guards the pointer swap only (readers
    /// hold it just long enough to copy the shared_ptr).
    std::shared_ptr<const Epoch> epoch;
    mutable std::mutex epoch_mu;
    /// Serializes logical writers (buffered appends, freezes, epoch
    /// publication by the merge). Never held while running a query.
    std::mutex write_mu;
    /// Serializes merges of this shard (background thread vs. fence).
    std::mutex merge_mu;
  };

  struct LoadTag {};
  explicit ShardedIndex(LoadTag) {}  // shell filled by LoadFrom

  std::shared_ptr<const Epoch> EpochOf(size_t s) const {
    std::lock_guard<std::mutex> lk(shards_[s]->epoch_mu);
    return shards_[s]->epoch;
  }
  void PublishEpoch(size_t s, std::shared_ptr<const Epoch> e) {
    std::lock_guard<std::mutex> lk(shards_[s]->epoch_mu);
    shards_[s]->epoch = std::move(e);
  }

  /// Buffered application of `ops` (already routed to shard `s`).
  /// Returns true in *schedule when the active delta was frozen and the
  /// caller must arrange the merge (background enqueue or inline).
  UpdateResult BufferOps(size_t s, const std::vector<UpdateOp>& ops,
                         bool* schedule);
  /// Immediate (exclusive-access) application of `ops` to shard `s`.
  UpdateResult ApplyImmediate(size_t s, const std::vector<UpdateOp>& ops);

  /// Merges shard `s`'s frozen delta into a freshly cloned base and
  /// publishes the result; no-op when nothing is frozen. Runs the
  /// expensive clone+replay without blocking writers (write_mu is taken
  /// only for the final publish). Must not be called with this shard's
  /// write_mu held.
  void MergeFrozen(size_t s);
  /// Drains shard `s` completely: merges the frozen layer, then freezes
  /// and merges the active delta, until both are empty.
  void DrainShard(size_t s);

  void ScheduleMerge(size_t s);
  void MaintenanceLoop();
  void StopMaintenance();

  size_t DirectoryBytes() const {
    return sizeof(*this) + partitioner_.SizeBytes() +
           shards_.capacity() * sizeof(shards_[0]);
  }

  ShardPartitioner partitioner_;
  /// Stable-address shards (epoch + locks); the vector itself is
  /// immutable after construction/load.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Visible points: base totals plus buffered net inserts.
  std::atomic<size_t> live_points_{0};
  /// Intra-query fan-out width (1 = sequential). Loaded indices resolve
  /// it from the environment in LoadFrom (it is a serving knob, not part
  /// of the persisted structure).
  int query_threads_ = 1;
  size_t delta_merge_threshold_ = 256;
  bool background_merge_ = true;

  // Lazily started background maintenance: writers enqueue frozen
  // shards, the thread merges them off the write path.
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  std::deque<size_t> maint_queue_;
  std::vector<uint8_t> maint_pending_;  // dedupes per-shard enqueues
  std::thread maint_thread_;
  bool maint_stop_ = false;

  /// Legacy-aggregate sink (no data blocks; see block_store()).
  BlockStore store_{0};
  // Descent-weighted avg-depth aggregate fed from finished contexts
  // (queries record depth in their context, never here).
  mutable std::atomic<uint64_t> invocations_{0};
  mutable std::atomic<uint64_t> descents_{0};
};

}  // namespace rsmi

#endif  // RSMI_SHARD_SHARDED_INDEX_H_
