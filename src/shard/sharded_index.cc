#include "shard/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/group_by.h"
#include "io/index_container.h"

namespace rsmi {
namespace {

/// Effective intra-query fan-out width: the environment override wins
/// over the config (a serving knob an operator flips without a rebuild).
int ResolveQueryThreads(int cfg_threads) {
  const int64_t env = GetEnvInt64("RSMI_SHARD_QUERY_THREADS", 0);
  const int64_t v = env > 0 ? env : cfg_threads;
  return static_cast<int>(std::min<int64_t>(std::max<int64_t>(v, 1), 256));
}

/// Runs fn(0..jobs-1) on `workers` threads (atomic work stealing). Each
/// job writes only its own output slot, so the only shared state is the
/// counter; a sub-query failure is rethrown on the calling thread.
void RunShardJobs(size_t jobs, int workers,
                  const std::function<void(size_t)>& fn) {
  std::atomic<size_t> next{0};
  std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        for (size_t j = next.fetch_add(1); j < jobs; j = next.fetch_add(1)) {
          fn(j);
        }
      } catch (...) {
        errors[static_cast<size_t>(w)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace

ShardedIndex::ShardedIndex(const std::vector<Point>& pts,
                           const ShardedIndexConfig& cfg,
                           const ShardBuilder& builder) {
  ShardPartitionerConfig pcfg = cfg.partition;
  pcfg.num_shards = cfg.num_shards;
  partitioner_ = ShardPartitioner(pts, pcfg);
  query_threads_ = ResolveQueryThreads(cfg.query_threads);

  const size_t k = static_cast<size_t>(partitioner_.num_shards());
  std::vector<std::vector<Point>> parts(k);
  for (auto& part : parts) part.reserve(pts.size() / k + 1);
  for (const Point& p : pts) {
    parts[static_cast<size_t>(partitioner_.ShardOf(p))].push_back(p);
  }
  regions_.assign(k, Rect::Empty());
  for (size_t i = 0; i < k; ++i) {
    regions_[i] = Rect::Bound(parts[i].begin(), parts[i].end());
  }
  live_points_ = pts.size();

  // Parallel shard build: shards are fully independent (each builder
  // call sees only its own points), so any worker count yields the same
  // index — workers only change wall time.
  shards_.resize(k);
  const int workers = std::max(
      1, std::min<int>(cfg.build_threads, static_cast<int>(k)));
  if (workers == 1) {
    for (size_t i = 0; i < k; ++i) {
      shards_[i] = builder(parts[i], static_cast<int>(i));
    }
  } else {
    // A builder failure on a worker must reach the caller like it would
    // on the sequential path, not std::terminate the process.
    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([this, &parts, &builder, &next, &errors, k, w] {
        try {
          for (size_t i = next.fetch_add(1); i < k;
               i = next.fetch_add(1)) {
            shards_[i] = builder(parts[i], static_cast<int>(i));
          }
        } catch (...) {
          errors[static_cast<size_t>(w)] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e != nullptr) std::rethrow_exception(e);
    }
  }
  for (const auto& shard : shards_) {
    if (shard == nullptr) {
      throw std::runtime_error("ShardedIndex: builder returned null shard");
    }
  }
}

std::string ShardedIndex::Name() const {
  return "Sharded<" + std::to_string(num_shards()) + ">[" +
         shards_[0]->Name() + "]";
}

std::optional<PointEntry> ShardedIndex::PointQuery(const Point& q,
                                                   QueryContext& ctx) const {
  return shards_[static_cast<size_t>(partitioner_.ShardOf(q))]->PointQuery(
      q, ctx);
}

void ShardedIndex::PointQueryBatch(const Point* qs, size_t n,
                                   QueryContext& ctx,
                                   std::optional<PointEntry>* out) const {
  if (n == 0) return;
  if (num_shards() == 1) {
    shards_[0]->PointQueryBatch(qs, n, ctx, out);
    return;
  }
  std::vector<int> shard_of(n);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = partitioner_.ShardOf(qs[i]);
  }
  // Regroup per shard so each inner index sees one contiguous batch and
  // its vectorized descent still batches shared sub-models.
  std::vector<uint32_t> scratch;
  std::vector<Point> gathered;
  std::vector<std::optional<PointEntry>> results;
  ForEachGroupBy(
      n, &scratch,
      [&](uint32_t i) { return shard_of[i]; },
      [&](const uint32_t* idx, size_t m) {
        gathered.resize(m);
        results.resize(m);
        for (size_t j = 0; j < m; ++j) gathered[j] = qs[idx[j]];
        shards_[static_cast<size_t>(shard_of[idx[0]])]->PointQueryBatch(
            gathered.data(), m, ctx, results.data());
        for (size_t j = 0; j < m; ++j) out[idx[j]] = std::move(results[j]);
      });
}

void ShardedIndex::PointQueryBatch(const Point* qs, size_t n,
                                   QueryContext* ctxs,
                                   std::optional<PointEntry>* out) const {
  if (n == 0) return;
  if (num_shards() == 1) {
    shards_[0]->PointQueryBatch(qs, n, ctxs, out);
    return;
  }
  std::vector<int> shard_of(n);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = partitioner_.ShardOf(qs[i]);
  }
  // Same per-shard regrouping as the shared-context overload, with each
  // group's contexts gathered/scattered alongside its points so query i
  // still charges exactly ctxs[i].
  std::vector<uint32_t> scratch;
  std::vector<Point> gathered;
  std::vector<QueryContext> gathered_ctx;
  std::vector<std::optional<PointEntry>> results;
  ForEachGroupBy(
      n, &scratch,
      [&](uint32_t i) { return shard_of[i]; },
      [&](const uint32_t* idx, size_t m) {
        gathered.resize(m);
        results.resize(m);
        gathered_ctx.assign(m, QueryContext{});
        for (size_t j = 0; j < m; ++j) gathered[j] = qs[idx[j]];
        shards_[static_cast<size_t>(shard_of[idx[0]])]->PointQueryBatch(
            gathered.data(), m, gathered_ctx.data(), results.data());
        for (size_t j = 0; j < m; ++j) {
          out[idx[j]] = std::move(results[j]);
          ctxs[idx[j]].MergeFrom(gathered_ctx[j]);
        }
      });
}

std::vector<Point> ShardedIndex::WindowQuery(const Rect& w,
                                             QueryContext& ctx) const {
  if (num_shards() == 1) return shards_[0]->WindowQuery(w, ctx);
  // Fan out to the overlapping shards only: a shard's region bounds all
  // of its points, so non-intersecting shards cannot contribute.
  std::vector<size_t> hit;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (regions_[i].Valid() && regions_[i].Intersects(w)) hit.push_back(i);
  }
  std::vector<Point> out;
  const int workers =
      std::min<int>(query_threads_, static_cast<int>(hit.size()));
  if (workers <= 1) {
    for (const size_t i : hit) {
      std::vector<Point> part = shards_[i]->WindowQuery(w, ctx);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }
  // Parallel fan-out: each sub-query charges a private context; merging
  // contexts and concatenating results in shard order makes the whole
  // call indistinguishable from the sequential loop above.
  std::vector<std::vector<Point>> parts(hit.size());
  std::vector<QueryContext> sub(hit.size());
  RunShardJobs(hit.size(), workers, [&](size_t j) {
    parts[j] = shards_[hit[j]]->WindowQuery(w, sub[j]);
  });
  for (size_t j = 0; j < hit.size(); ++j) {
    ctx.MergeFrom(sub[j]);
    out.insert(out.end(), parts[j].begin(), parts[j].end());
  }
  return out;
}

std::vector<Point> ShardedIndex::KnnQuery(const Point& q, size_t k,
                                          QueryContext& ctx) const {
  if (num_shards() == 1) return shards_[0]->KnnQuery(q, k, ctx);
  if (k == 0) return {};

  // Visit shards best-first by region distance; the shared result heap
  // (the k best candidates so far, worst on top) bounds the search — a
  // shard whose region is farther than the current k-th distance cannot
  // improve the result, and neither can any shard after it.
  struct ShardDist {
    double d2;
    size_t shard;
  };
  std::vector<ShardDist> order;
  order.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!regions_[i].Valid()) continue;
    order.push_back(ShardDist{regions_[i].MinDist2(q), i});
  }
  std::sort(order.begin(), order.end(),
            [](const ShardDist& a, const ShardDist& b) {
              if (a.d2 != b.d2) return a.d2 < b.d2;
              return a.shard < b.shard;
            });

  struct Cand {
    double d2;
    Point pt;
  };
  const auto farther = [](const Cand& a, const Cand& b) {
    if (a.d2 != b.d2) return a.d2 < b.d2;
    if (a.pt.x != b.pt.x) return a.pt.x < b.pt.x;
    return a.pt.y < b.pt.y;
  };
  // Parallel fan-out queries every candidate shard up front (the k-th
  // distance bound that lets the sequential walk skip far shards only
  // exists once nearer shards have answered). The merged result is
  // identical — skipped shards cannot contribute, see the loop's break —
  // but counted costs include the shards the sequential walk would have
  // skipped; each sub-query charges a private context, merged at the end.
  const int workers =
      std::min<int>(query_threads_, static_cast<int>(order.size()));
  std::vector<std::vector<Point>> parts;
  std::vector<QueryContext> sub;
  if (workers > 1) {
    parts.resize(order.size());
    sub.assign(order.size(), QueryContext{});
    RunShardJobs(order.size(), workers, [&](size_t j) {
      parts[j] = shards_[order[j].shard]->KnnQuery(q, k, sub[j]);
    });
  }

  std::vector<Cand> heap;  // max-heap under `farther`
  heap.reserve(k + 1);
  for (size_t j = 0; j < order.size(); ++j) {
    const ShardDist& sd = order[j];
    if (heap.size() == k && sd.d2 > heap.front().d2) break;
    const std::vector<Point> cand = workers > 1
                                        ? std::move(parts[j])
                                        : shards_[sd.shard]->KnnQuery(q, k, ctx);
    for (const Point& p : cand) {
      const Cand c{SquaredDist(p, q), p};
      if (heap.size() < k) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end(), farther);
      } else if (farther(c, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), farther);
        heap.back() = c;
        std::push_heap(heap.begin(), heap.end(), farther);
      }
    }
  }
  for (const QueryContext& s : sub) ctx.MergeFrom(s);
  std::sort(heap.begin(), heap.end(), farther);
  std::vector<Point> out;
  out.reserve(heap.size());
  for (const Cand& c : heap) out.push_back(c.pt);
  return out;
}

void ShardedIndex::Insert(const Point& p) {
  const size_t s = static_cast<size_t>(partitioner_.ShardOf(p));
  shards_[s]->Insert(p);
  regions_[s].Expand(p);
  ++live_points_;
}

bool ShardedIndex::Delete(const Point& p) {
  const size_t s = static_cast<size_t>(partitioner_.ShardOf(p));
  if (!shards_[s]->Delete(p)) return false;
  --live_points_;
  return true;
}

IndexStats ShardedIndex::Stats() const {
  IndexStats s;
  s.name = Name();
  s.num_points = live_points_;
  s.size_bytes = DirectoryBytes();
  for (const auto& shard : shards_) {
    const IndexStats inner = shard->Stats();
    s.size_bytes += inner.size_bytes;
    s.num_models += inner.num_models;
    s.height = std::max(s.height, inner.height);
  }
  ++s.height;  // the routing level above the shards
  const uint64_t desc = descents_.load(std::memory_order_relaxed);
  s.avg_query_depth =
      desc == 0 ? 0.0
                : static_cast<double>(
                      invocations_.load(std::memory_order_relaxed)) /
                      static_cast<double>(desc);
  return s;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

bool ShardedIndex::SaveTo(Serializer& out) const {
  out.WritePod<uint32_t>(static_cast<uint32_t>(shards_.size()));
  partitioner_.WriteTo(out);
  out.WriteVec(regions_);
  out.WritePod(live_points_);
  // One self-describing container per shard: the inner kind spec rides
  // inside each, so LoadFrom needs no knowledge of what the shards are —
  // and a shard can itself be a sharded index (recursive specs).
  for (const auto& shard : shards_) {
    if (!WriteIndexContainer(out, *shard)) return false;
  }
  return true;
}

bool ShardedIndex::LoadFrom(Deserializer& in) {
  // Serving knob, not persisted structure: a loaded index fans out with
  // whatever the deployment environment asks for.
  query_threads_ = ResolveQueryThreads(1);
  uint32_t k = 0;
  if (!in.ReadPod(&k)) return false;
  if (k < 1 || k > 4096) {
    return in.Fail("sharded index shard count out of range");
  }
  if (!partitioner_.ReadFrom(in)) return false;
  if (partitioner_.num_shards() != static_cast<int>(k)) {
    return in.Fail("partitioner shard count disagrees with shard table");
  }
  if (!in.ReadVec(&regions_)) return false;
  if (regions_.size() != k) {
    return in.Fail("region table size disagrees with shard count");
  }
  if (!in.ReadPod(&live_points_)) return false;
  shards_.clear();
  shards_.reserve(k);
  for (uint32_t i = 0; i < k; ++i) {
    std::string why;
    auto shard = ReadIndexContainer(in, &why);
    if (shard == nullptr) {
      return in.Fail("shard " + std::to_string(i) + ": " + why);
    }
    // The builder produces one kind for every shard, and KindSpec()
    // describes the whole index via shard 0 — a payload mixing kinds is
    // crafted, and would make the embedded spec lie about its contents.
    if (!shards_.empty() && shard->KindSpec() != shards_[0]->KindSpec()) {
      return in.Fail("sharded payload mixes inner index kinds");
    }
    shards_.push_back(std::move(shard));
  }
  return true;
}

namespace {

/// Walks every point stored under `index` — directly from its block
/// store, or recursively through the shards of a nested ShardedIndex
/// (whose own store is an empty sink). Returns false as soon as `fn`
/// rejects a point.
bool ForEachStoredPoint(const SpatialIndex& index,
                        const std::function<bool(const Point&)>& fn) {
  if (const auto* nested = dynamic_cast<const ShardedIndex*>(&index)) {
    for (int i = 0; i < nested->num_shards(); ++i) {
      if (!ForEachStoredPoint(nested->shard(i), fn)) return false;
    }
    return true;
  }
  const BlockStore& store = index.block_store();
  for (int id = 0; id < static_cast<int>(store.NumBlocks()); ++id) {
    for (const PointEntry& e : store.Peek(id).entries) {
      if (!fn(e.pt)) return false;
    }
  }
  return true;
}

}  // namespace

bool ShardedIndex::ValidateStructure(std::string* error) const {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!partitioner_.Validate(error)) return false;
  if (partitioner_.num_shards() != num_shards()) {
    return fail("partitioner shard count disagrees with shard table");
  }
  if (regions_.size() != shards_.size()) {
    return fail("region table size disagrees with shard table");
  }
  size_t points = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == nullptr) return fail("null shard");
    if (!shards_[i]->ValidateStructure(error)) return false;
    points += shards_[i]->Stats().num_points;
    // Window/kNN fan-out prunes shards by region, so a region that does
    // not cover its shard's stored points silently drops results —
    // reject it here (the load path runs this as its final backstop).
    if (!ForEachStoredPoint(*shards_[i], [&](const Point& p) {
          return regions_[i].Valid() && regions_[i].Contains(p);
        })) {
      return fail("shard " + std::to_string(i) +
                  " stores a point outside its recorded region");
    }
  }
  if (points != live_points_) {
    return fail("sharded live-point count disagrees with shard totals");
  }
  return true;
}

}  // namespace rsmi
