#include "shard/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include <chrono>

#include "common/env.h"
#include "common/group_by.h"
#include "io/index_container.h"
#include "io/serializer.h"
#include "obs/metrics.h"

namespace rsmi {
namespace {

// ---------------------------------------------------------------------------
// Observability (process-global registry, src/obs/). Only maintenance
// paths record — epoch publication, freezes, merges; the read path is
// untouched. References are resolved once per process.
// ---------------------------------------------------------------------------

Counter& EpochSwapCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("shard.epoch_swaps");
  return c;
}

Histogram& FreezeDeltaOpsHistogram() {
  static Histogram& h =
      MetricsRegistry::Global().GetHistogram("shard.freeze_delta_ops");
  return h;
}

/// Effective intra-query fan-out width: the environment override wins
/// over the config (a serving knob an operator flips without a rebuild).
int ResolveQueryThreads(int cfg_threads) {
  const int64_t env = GetEnvInt64("RSMI_SHARD_QUERY_THREADS", 0);
  const int64_t v = env > 0 ? env : cfg_threads;
  return static_cast<int>(std::min<int64_t>(std::max<int64_t>(v, 1), 256));
}

/// Effective delta-merge threshold, same env-beats-config rule.
size_t ResolveDeltaThreshold(size_t cfg_threshold) {
  const int64_t env = GetEnvInt64("RSMI_SHARD_DELTA_THRESHOLD", 0);
  const int64_t v = env > 0 ? env : static_cast<int64_t>(cfg_threshold);
  return static_cast<size_t>(std::max<int64_t>(v, 1));
}

/// Runs fn(0..jobs-1) on `workers` threads (atomic work stealing). Each
/// job writes only its own output slot, so the only shared state is the
/// counter; a sub-query failure is rethrown on the calling thread.
void RunShardJobs(size_t jobs, int workers,
                  const std::function<void(size_t)>& fn) {
  std::atomic<size_t> next{0};
  std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        for (size_t j = next.fetch_add(1); j < jobs; j = next.fetch_add(1)) {
          fn(j);
        }
      } catch (...) {
        errors[static_cast<size_t>(w)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

// ---------------------------------------------------------------------------
// Delta overlay composition. Layers are passed merging-first (the frozen
// layer sits between the base and the active delta); a null pointer
// means "layer absent or empty — no probe, no cost".
// ---------------------------------------------------------------------------

const DeltaBuffer* LayerOrNull(
    const std::shared_ptr<const DeltaBuffer>& d) {
  return (d != nullptr && !d->empty()) ? d.get() : nullptr;
}

/// Rewrites a base point-query result through the overlay layers.
/// Deletes recorded in a layer consume copies from beneath it (buffered
/// copies from lower layers first, the stored entry last); surviving
/// buffered copies surface with the sentinel id -1 — the real id is
/// assigned by the base structure when the delta merges. Each non-empty
/// layer probed charges one block access (the overlay is one in-memory
/// buffer page, like RSMI's leaf insert buffer).
void OverlayPointResult(const DeltaBuffer* mrg, const DeltaBuffer* act,
                        const Point& q, QueryContext& ctx,
                        std::optional<PointEntry>* r) {
  bool base_alive = r->has_value();
  uint32_t buffered = 0;
  for (const DeltaBuffer* layer : {mrg, act}) {
    if (layer == nullptr) continue;
    ctx.CountBlockAccess(1);
    const DeltaBuffer::Entry* e = layer->Find(q);
    if (e == nullptr) continue;
    uint32_t del = e->base_deletes;
    const uint32_t take = std::min(del, buffered);
    buffered -= take;
    del -= take;
    if (del > 0 && base_alive) base_alive = false;
    buffered += e->pending_inserts;
  }
  if (base_alive) return;  // the stored entry survives the overlay
  if (buffered > 0) {
    *r = PointEntry{q, -1};
  } else {
    r->reset();
  }
}

/// Applies one layer to a window result: drops positions whose below
/// copies the layer deleted, then adds the layer's pending inserts that
/// fall inside the window.
std::vector<Point> OverlayWindow(std::vector<Point> in,
                                 const DeltaBuffer* layer, const Rect& w,
                                 QueryContext& ctx) {
  if (layer == nullptr) return in;
  ctx.CountBlockAccess(1);
  std::vector<Point> out;
  out.reserve(in.size());
  for (const Point& p : in) {
    const DeltaBuffer::Entry* e = layer->Find(p);
    if (e != nullptr && e->base_deletes > 0) continue;
    out.push_back(p);
  }
  for (const DeltaBuffer::Entry& e : layer->entries()) {
    if (e.pending_inserts == 0) continue;
    if (!w.Contains(e.pt)) continue;
    out.push_back(e.pt);
  }
  return out;
}

std::vector<Point> EpochWindowQuery(const SpatialIndex& base,
                                    const DeltaBuffer* mrg,
                                    const DeltaBuffer* act, const Rect& w,
                                    QueryContext& ctx) {
  std::vector<Point> out = base.WindowQuery(w, ctx);
  out = OverlayWindow(std::move(out), mrg, w, ctx);
  out = OverlayWindow(std::move(out), act, w, ctx);
  return out;
}

std::vector<Point> EpochKnnQuery(const SpatialIndex& base,
                                 const DeltaBuffer* mrg,
                                 const DeltaBuffer* act, const Point& q,
                                 size_t k, QueryContext& ctx) {
  if (mrg == nullptr && act == nullptr) return base.KnnQuery(q, k, ctx);
  // Over-fetch by the number of buffered deletions so the overlay filter
  // cannot starve the result below k, then merge the buffered inserts in
  // by distance.
  const size_t extra = (mrg != nullptr ? mrg->TotalBaseDeletes() : 0) +
                       (act != nullptr ? act->TotalBaseDeletes() : 0);
  std::vector<Point> cand = base.KnnQuery(q, k + extra, ctx);
  if (mrg != nullptr) ctx.CountBlockAccess(1);
  if (act != nullptr) ctx.CountBlockAccess(1);
  const auto deleted_below = [&](const Point& p) {
    for (const DeltaBuffer* layer : {mrg, act}) {
      if (layer == nullptr) continue;
      const DeltaBuffer::Entry* e = layer->Find(p);
      if (e != nullptr && e->base_deletes > 0) return true;
    }
    return false;
  };
  std::vector<Point> vis;
  vis.reserve(cand.size());
  for (const Point& p : cand) {
    if (!deleted_below(p)) vis.push_back(p);
  }
  // Pending inserts are visible unless a layer above deleted them.
  const auto add_pending = [&vis](const DeltaBuffer* layer,
                                  const DeltaBuffer* above) {
    if (layer == nullptr) return;
    for (const DeltaBuffer::Entry& e : layer->entries()) {
      if (e.pending_inserts == 0) continue;
      if (above != nullptr) {
        const DeltaBuffer::Entry* ae = above->Find(e.pt);
        if (ae != nullptr && ae->base_deletes > 0) continue;
      }
      vis.push_back(e.pt);
    }
  };
  add_pending(mrg, act);
  add_pending(act, nullptr);
  std::sort(vis.begin(), vis.end(), [&q](const Point& a, const Point& b) {
    const double da = SquaredDist(a, q);
    const double db = SquaredDist(b, q);
    if (da != db) return da < db;
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  if (vis.size() > k) vis.resize(k);
  return vis;
}

}  // namespace

ShardedIndex::ShardedIndex(const std::vector<Point>& pts,
                           const ShardedIndexConfig& cfg,
                           const ShardBuilder& builder) {
  ShardPartitionerConfig pcfg = cfg.partition;
  pcfg.num_shards = cfg.num_shards;
  partitioner_ = ShardPartitioner(pts, pcfg);
  query_threads_ = ResolveQueryThreads(cfg.query_threads);
  delta_merge_threshold_ = ResolveDeltaThreshold(cfg.delta_merge_threshold);
  background_merge_ = cfg.background_merge;

  const size_t k = static_cast<size_t>(partitioner_.num_shards());
  std::vector<std::vector<Point>> parts(k);
  for (auto& part : parts) part.reserve(pts.size() / k + 1);
  for (const Point& p : pts) {
    parts[static_cast<size_t>(partitioner_.ShardOf(p))].push_back(p);
  }
  live_points_.store(pts.size(), std::memory_order_relaxed);

  // Parallel shard build: shards are fully independent (each builder
  // call sees only its own points), so any worker count yields the same
  // index — workers only change wall time.
  std::vector<std::unique_ptr<SpatialIndex>> built(k);
  const int workers = std::max(
      1, std::min<int>(cfg.build_threads, static_cast<int>(k)));
  if (workers == 1) {
    for (size_t i = 0; i < k; ++i) {
      built[i] = builder(parts[i], static_cast<int>(i));
    }
  } else {
    // A builder failure on a worker must reach the caller like it would
    // on the sequential path, not std::terminate the process.
    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&built, &parts, &builder, &next, &errors, k, w] {
        try {
          for (size_t i = next.fetch_add(1); i < k;
               i = next.fetch_add(1)) {
            built[i] = builder(parts[i], static_cast<int>(i));
          }
        } catch (...) {
          errors[static_cast<size_t>(w)] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e != nullptr) std::rethrow_exception(e);
    }
  }
  shards_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    if (built[i] == nullptr) {
      throw std::runtime_error("ShardedIndex: builder returned null shard");
    }
    auto epoch = std::make_shared<Epoch>();
    epoch->base = std::move(built[i]);
    epoch->delta = std::make_shared<DeltaBuffer>();
    epoch->region = Rect::Bound(parts[i].begin(), parts[i].end());
    auto shard = std::make_unique<Shard>();
    shard->epoch = std::move(epoch);
    shards_.push_back(std::move(shard));
  }
}

ShardedIndex::~ShardedIndex() { StopMaintenance(); }

std::string ShardedIndex::Name() const {
  return "Sharded<" + std::to_string(num_shards()) + ">[" +
         EpochOf(0)->base->Name() + "]";
}

std::string ShardedIndex::KindSpec() const {
  // Not persistable when the inner kind is not (e.g. sharded KDB).
  const std::string inner = EpochOf(0)->base->KindSpec();
  if (inner.empty()) return "";
  return "sharded<" + std::to_string(num_shards()) + ">:" + inner;
}

bool ShardedIndex::SupportsConcurrentUpdates() const {
  // Merging a frozen delta clones the shard base through the
  // persistence round-trip; an inner kind that cannot persist cannot be
  // cloned without blocking readers, so those stay writes-exclusive
  // (buffered requests degrade to immediate application).
  return !EpochOf(0)->base->KindSpec().empty();
}

size_t ShardedIndex::shard_delta_size(int i) const {
  const auto ep = EpochOf(static_cast<size_t>(i));
  return ep->delta->size() +
         (ep->merging != nullptr ? ep->merging->size() : 0);
}

std::optional<PointEntry> ShardedIndex::PointQuery(const Point& q,
                                                   QueryContext& ctx) const {
  const auto ep = EpochOf(static_cast<size_t>(partitioner_.ShardOf(q)));
  std::optional<PointEntry> r = ep->base->PointQuery(q, ctx);
  OverlayPointResult(LayerOrNull(ep->merging), LayerOrNull(ep->delta), q,
                     ctx, &r);
  return r;
}

void ShardedIndex::PointQueryBatch(const Point* qs, size_t n,
                                   QueryContext& ctx,
                                   std::optional<PointEntry>* out) const {
  if (n == 0) return;
  if (num_shards() == 1) {
    const auto ep = EpochOf(0);
    ep->base->PointQueryBatch(qs, n, ctx, out);
    const DeltaBuffer* mrg = LayerOrNull(ep->merging);
    const DeltaBuffer* act = LayerOrNull(ep->delta);
    if (mrg == nullptr && act == nullptr) return;
    for (size_t i = 0; i < n; ++i) {
      OverlayPointResult(mrg, act, qs[i], ctx, &out[i]);
    }
    return;
  }
  std::vector<int> shard_of(n);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = partitioner_.ShardOf(qs[i]);
  }
  // Regroup per shard so each inner index sees one contiguous batch and
  // its vectorized descent still batches shared sub-models.
  std::vector<uint32_t> scratch;
  std::vector<Point> gathered;
  std::vector<std::optional<PointEntry>> results;
  ForEachGroupBy(
      n, &scratch,
      [&](uint32_t i) { return shard_of[i]; },
      [&](const uint32_t* idx, size_t m) {
        gathered.resize(m);
        results.resize(m);
        for (size_t j = 0; j < m; ++j) gathered[j] = qs[idx[j]];
        const auto ep = EpochOf(static_cast<size_t>(shard_of[idx[0]]));
        ep->base->PointQueryBatch(gathered.data(), m, ctx, results.data());
        const DeltaBuffer* mrg = LayerOrNull(ep->merging);
        const DeltaBuffer* act = LayerOrNull(ep->delta);
        if (mrg != nullptr || act != nullptr) {
          for (size_t j = 0; j < m; ++j) {
            OverlayPointResult(mrg, act, gathered[j], ctx, &results[j]);
          }
        }
        for (size_t j = 0; j < m; ++j) out[idx[j]] = std::move(results[j]);
      });
}

void ShardedIndex::PointQueryBatch(const Point* qs, size_t n,
                                   QueryContext* ctxs,
                                   std::optional<PointEntry>* out) const {
  if (n == 0) return;
  if (num_shards() == 1) {
    const auto ep = EpochOf(0);
    ep->base->PointQueryBatch(qs, n, ctxs, out);
    const DeltaBuffer* mrg = LayerOrNull(ep->merging);
    const DeltaBuffer* act = LayerOrNull(ep->delta);
    if (mrg == nullptr && act == nullptr) return;
    for (size_t i = 0; i < n; ++i) {
      OverlayPointResult(mrg, act, qs[i], ctxs[i], &out[i]);
    }
    return;
  }
  std::vector<int> shard_of(n);
  for (size_t i = 0; i < n; ++i) {
    shard_of[i] = partitioner_.ShardOf(qs[i]);
  }
  // Same per-shard regrouping as the shared-context overload, with each
  // group's contexts gathered/scattered alongside its points so query i
  // still charges exactly ctxs[i].
  std::vector<uint32_t> scratch;
  std::vector<Point> gathered;
  std::vector<QueryContext> gathered_ctx;
  std::vector<std::optional<PointEntry>> results;
  ForEachGroupBy(
      n, &scratch,
      [&](uint32_t i) { return shard_of[i]; },
      [&](const uint32_t* idx, size_t m) {
        gathered.resize(m);
        results.resize(m);
        gathered_ctx.assign(m, QueryContext{});
        for (size_t j = 0; j < m; ++j) gathered[j] = qs[idx[j]];
        const auto ep = EpochOf(static_cast<size_t>(shard_of[idx[0]]));
        ep->base->PointQueryBatch(gathered.data(), m, gathered_ctx.data(),
                                  results.data());
        const DeltaBuffer* mrg = LayerOrNull(ep->merging);
        const DeltaBuffer* act = LayerOrNull(ep->delta);
        if (mrg != nullptr || act != nullptr) {
          for (size_t j = 0; j < m; ++j) {
            OverlayPointResult(mrg, act, gathered[j], gathered_ctx[j],
                               &results[j]);
          }
        }
        for (size_t j = 0; j < m; ++j) {
          out[idx[j]] = std::move(results[j]);
          ctxs[idx[j]].MergeFrom(gathered_ctx[j]);
        }
      });
}

std::vector<Point> ShardedIndex::WindowQuery(const Rect& w,
                                             QueryContext& ctx) const {
  // Snapshot every shard's epoch once: pruning and querying see the same
  // published state, and in-flight work survives concurrent publishes.
  std::vector<std::shared_ptr<const Epoch>> eps(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) eps[i] = EpochOf(i);
  if (num_shards() == 1) {
    return EpochWindowQuery(*eps[0]->base, LayerOrNull(eps[0]->merging),
                            LayerOrNull(eps[0]->delta), w, ctx);
  }
  // Fan out to the overlapping shards only: a shard's region bounds all
  // of its points (buffered inserts included), so non-intersecting
  // shards cannot contribute.
  std::vector<size_t> hit;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (eps[i]->region.Valid() && eps[i]->region.Intersects(w)) {
      hit.push_back(i);
    }
  }
  std::vector<Point> out;
  const int workers =
      std::min<int>(query_threads_, static_cast<int>(hit.size()));
  if (workers <= 1) {
    for (const size_t i : hit) {
      std::vector<Point> part =
          EpochWindowQuery(*eps[i]->base, LayerOrNull(eps[i]->merging),
                           LayerOrNull(eps[i]->delta), w, ctx);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }
  // Parallel fan-out: each sub-query charges a private context; merging
  // contexts and concatenating results in shard order makes the whole
  // call indistinguishable from the sequential loop above.
  std::vector<std::vector<Point>> parts(hit.size());
  std::vector<QueryContext> sub(hit.size());
  RunShardJobs(hit.size(), workers, [&](size_t j) {
    const size_t i = hit[j];
    parts[j] = EpochWindowQuery(*eps[i]->base, LayerOrNull(eps[i]->merging),
                                LayerOrNull(eps[i]->delta), w, sub[j]);
  });
  for (size_t j = 0; j < hit.size(); ++j) {
    ctx.MergeFrom(sub[j]);
    out.insert(out.end(), parts[j].begin(), parts[j].end());
  }
  return out;
}

std::vector<Point> ShardedIndex::KnnQuery(const Point& q, size_t k,
                                          QueryContext& ctx) const {
  std::vector<std::shared_ptr<const Epoch>> eps(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) eps[i] = EpochOf(i);
  if (num_shards() == 1) {
    return EpochKnnQuery(*eps[0]->base, LayerOrNull(eps[0]->merging),
                         LayerOrNull(eps[0]->delta), q, k, ctx);
  }
  if (k == 0) return {};

  // Visit shards best-first by region distance; the shared result heap
  // (the k best candidates so far, worst on top) bounds the search — a
  // shard whose region is farther than the current k-th distance cannot
  // improve the result, and neither can any shard after it.
  struct ShardDist {
    double d2;
    size_t shard;
  };
  std::vector<ShardDist> order;
  order.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!eps[i]->region.Valid()) continue;
    order.push_back(ShardDist{eps[i]->region.MinDist2(q), i});
  }
  std::sort(order.begin(), order.end(),
            [](const ShardDist& a, const ShardDist& b) {
              if (a.d2 != b.d2) return a.d2 < b.d2;
              return a.shard < b.shard;
            });

  struct Cand {
    double d2;
    Point pt;
  };
  const auto farther = [](const Cand& a, const Cand& b) {
    if (a.d2 != b.d2) return a.d2 < b.d2;
    if (a.pt.x != b.pt.x) return a.pt.x < b.pt.x;
    return a.pt.y < b.pt.y;
  };
  const auto shard_knn = [&](size_t i, QueryContext& c) {
    return EpochKnnQuery(*eps[i]->base, LayerOrNull(eps[i]->merging),
                         LayerOrNull(eps[i]->delta), q, k, c);
  };
  // Parallel fan-out queries every candidate shard up front (the k-th
  // distance bound that lets the sequential walk skip far shards only
  // exists once nearer shards have answered). The merged result is
  // identical — skipped shards cannot contribute, see the loop's break —
  // but counted costs include the shards the sequential walk would have
  // skipped; each sub-query charges a private context, merged at the end.
  const int workers =
      std::min<int>(query_threads_, static_cast<int>(order.size()));
  std::vector<std::vector<Point>> parts;
  std::vector<QueryContext> sub;
  if (workers > 1) {
    parts.resize(order.size());
    sub.assign(order.size(), QueryContext{});
    RunShardJobs(order.size(), workers, [&](size_t j) {
      parts[j] = shard_knn(order[j].shard, sub[j]);
    });
  }

  std::vector<Cand> heap;  // max-heap under `farther`
  heap.reserve(k + 1);
  for (size_t j = 0; j < order.size(); ++j) {
    const ShardDist& sd = order[j];
    if (heap.size() == k && sd.d2 > heap.front().d2) break;
    const std::vector<Point> cand =
        workers > 1 ? std::move(parts[j]) : shard_knn(sd.shard, ctx);
    for (const Point& p : cand) {
      const Cand c{SquaredDist(p, q), p};
      if (heap.size() < k) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end(), farther);
      } else if (farther(c, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), farther);
        heap.back() = c;
        std::push_heap(heap.begin(), heap.end(), farther);
      }
    }
  }
  for (const QueryContext& s : sub) ctx.MergeFrom(s);
  std::sort(heap.begin(), heap.end(), farther);
  std::vector<Point> out;
  out.reserve(heap.size());
  for (const Cand& c : heap) out.push_back(c.pt);
  return out;
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

void ShardedIndex::InsertOne(const Point& p) {
  UpdateBatch b;
  b.Insert(p);
  DoApplyUpdates(b, WriteOptions{});
}

bool ShardedIndex::DeleteOne(const Point& p) {
  UpdateBatch b;
  b.Delete(p);
  return DoApplyUpdates(b, WriteOptions{}).delete_misses == 0;
}

UpdateResult ShardedIndex::DoApplyUpdates(const UpdateBatch& batch,
                                          const WriteOptions& opts) {
  UpdateResult r;
  if (batch.empty()) return r;
  const bool buffered = opts.buffered && SupportsConcurrentUpdates();
  // Route every op to its owning shard. Per-shard arrival order is
  // preserved (stable grouping); cross-shard interleaving is immaterial
  // because shards hold disjoint positions.
  std::vector<std::vector<UpdateOp>> per(shards_.size());
  for (const UpdateOp& op : batch.ops) {
    per[static_cast<size_t>(partitioner_.ShardOf(op.pt))].push_back(op);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per[s].empty()) continue;
    if (buffered) {
      bool schedule = false;
      r.MergeFrom(BufferOps(s, per[s], &schedule));
      if (schedule) {
        ++r.merges_triggered;
        if (background_merge_) {
          ScheduleMerge(s);
        } else {
          MergeFrozen(s);
        }
      }
    } else {
      r.MergeFrom(ApplyImmediate(s, per[s]));
    }
  }
  return r;
}

UpdateResult ShardedIndex::BufferOps(size_t s,
                                     const std::vector<UpdateOp>& ops,
                                     bool* schedule) {
  *schedule = false;
  Shard& sh = *shards_[s];
  std::lock_guard<std::mutex> wl(sh.write_mu);
  const auto ep = EpochOf(s);
  // Copy-on-write: readers keep running on the published delta while
  // this writer appends into a private copy.
  auto delta = std::make_shared<DeltaBuffer>(*ep->delta);
  Rect region = ep->region;
  const DeltaBuffer* mrg = LayerOrNull(ep->merging);
  // Existence beneath the active layer (frozen overlay over base):
  // AppendDelete uses it so a missed delete stays an exact no-op and a
  // buffered base deletion is recorded at most once per stored point.
  const auto below_contains = [&](const Point& p) {
    if (mrg != nullptr) {
      const DeltaBuffer::Entry* e = mrg->Find(p);
      if (e != nullptr && e->pending_inserts > 0) return true;
      if (e != nullptr && e->base_deletes > 0) return false;
    }
    QueryContext probe;  // writer-side probe; charged to no reader
    return ep->base->PointQuery(p, probe).has_value();
  };
  UpdateResult r;
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      delta->AppendInsert(op.pt);
      region.Expand(op.pt);
      live_points_.fetch_add(1, std::memory_order_relaxed);
      ++r.applied_inserts;
      ++r.buffered_ops;
    } else if (delta->AppendDelete(op.pt, below_contains)) {
      live_points_.fetch_sub(1, std::memory_order_relaxed);
      ++r.applied_deletes;
      ++r.buffered_ops;
    } else {
      ++r.delete_misses;
    }
  }
  auto next = std::make_shared<Epoch>();
  next->base = ep->base;
  next->merging = ep->merging;
  next->region = region;
  if (delta->size() >= delta_merge_threshold_ && ep->merging == nullptr) {
    // Freeze: the grown delta becomes the merging layer, writers start a
    // fresh active buffer, and the caller arranges the merge.
    FreezeDeltaOpsHistogram().Observe(delta->size());
    next->merging = std::move(delta);
    next->delta = std::make_shared<DeltaBuffer>();
    *schedule = true;
  } else {
    next->delta = std::move(delta);
  }
  PublishEpoch(s, std::move(next));
  EpochSwapCounter().Add();
  return r;
}

UpdateResult ShardedIndex::ApplyImmediate(size_t s,
                                          const std::vector<UpdateOp>& ops) {
  // Exclusive access by contract. A shard with buffered ops is drained
  // first so these ops land behind them in arrival order — on a clean
  // shard this path mutates the base in place, byte-for-byte the
  // pre-epoch behavior.
  {
    const auto ep = EpochOf(s);
    if (ep->merging != nullptr || !ep->delta->empty()) DrainShard(s);
  }
  const auto ep = EpochOf(s);
  UpdateResult r;
  Rect region = ep->region;
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      ep->base->Insert(op.pt);
      region.Expand(op.pt);
      live_points_.fetch_add(1, std::memory_order_relaxed);
      ++r.applied_inserts;
    } else if (ep->base->Delete(op.pt)) {
      live_points_.fetch_sub(1, std::memory_order_relaxed);
      ++r.applied_deletes;
    } else {
      ++r.delete_misses;
    }
  }
  auto next = std::make_shared<Epoch>(*ep);
  next->region = region;
  PublishEpoch(s, std::move(next));
  EpochSwapCounter().Add();
  return r;
}

// ---------------------------------------------------------------------------
// Maintenance: freezing, merging, fencing
// ---------------------------------------------------------------------------

void ShardedIndex::MergeFrozen(size_t s) {
  Shard& sh = *shards_[s];
  // One merge per shard at a time (background thread vs. fence); the
  // expensive clone+replay below runs with no writer lock held, so
  // writers keep appending to the active delta meanwhile.
  std::lock_guard<std::mutex> ml(sh.merge_mu);
  const auto ep = EpochOf(s);
  if (ep->merging == nullptr) return;
  const auto merge_start = std::chrono::steady_clock::now();

  // Clone the base through the persistence round-trip (bit-identical by
  // the container contract), then replay the frozen log sequentially —
  // the merged shard is exactly what immediate application would have
  // produced.
  Serializer buf;
  if (!WriteIndexContainer(buf, *ep->base)) {
    throw std::runtime_error("ShardedIndex: shard base failed to serialize");
  }
  Deserializer in(buf.buffer());
  std::string why;
  std::unique_ptr<SpatialIndex> clone = ReadIndexContainer(in, &why);
  if (clone == nullptr) {
    throw std::runtime_error("ShardedIndex: shard clone failed: " + why);
  }
  UpdateBatch replay;
  replay.ops = ep->merging->log();
  clone->ApplyUpdates(replay, WriteOptions{});  // private copy: immediate
  std::shared_ptr<SpatialIndex> merged = std::move(clone);

  bool refreeze = false;
  {
    std::lock_guard<std::mutex> wl(sh.write_mu);
    const auto cur = EpochOf(s);  // may hold a newer active delta
    auto next = std::make_shared<Epoch>();
    next->base = merged;
    next->delta = cur->delta;
    next->merging = nullptr;
    next->region = cur->region;
    if (next->delta->size() >= delta_merge_threshold_) {
      // The active delta outgrew the threshold while this merge ran.
      FreezeDeltaOpsHistogram().Observe(next->delta->size());
      next->merging = next->delta;
      next->delta = std::make_shared<DeltaBuffer>();
      refreeze = true;
    }
    PublishEpoch(s, std::move(next));
    EpochSwapCounter().Add();
    // Readers on the old epoch finish on the old base; the last epoch
    // reference dropping frees it.
  }
  {
    static Counter& merges =
        MetricsRegistry::Global().GetCounter("shard.merges");
    static Counter& replayed =
        MetricsRegistry::Global().GetCounter("shard.replayed_ops");
    static Histogram& merge_us =
        MetricsRegistry::Global().GetHistogram("shard.merge_us");
    merges.Add();
    replayed.Add(replay.ops.size());
    merge_us.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count()));
  }
  if (refreeze && background_merge_) ScheduleMerge(s);
}

void ShardedIndex::DrainShard(size_t s) {
  Shard& sh = *shards_[s];
  for (;;) {
    MergeFrozen(s);
    std::lock_guard<std::mutex> wl(sh.write_mu);
    const auto ep = EpochOf(s);
    if (ep->merging != nullptr) continue;  // froze again — merge it
    if (ep->delta->empty()) return;        // clean
    FreezeDeltaOpsHistogram().Observe(ep->delta->size());
    auto next = std::make_shared<Epoch>(*ep);
    next->merging = ep->delta;
    next->delta = std::make_shared<DeltaBuffer>();
    PublishEpoch(s, std::move(next));
    EpochSwapCounter().Add();
  }
}

void ShardedIndex::FlushUpdates() {
  for (size_t s = 0; s < shards_.size(); ++s) DrainShard(s);
}

void ShardedIndex::ScheduleMerge(size_t s) {
  std::lock_guard<std::mutex> lk(maint_mu_);
  if (maint_stop_) return;
  if (maint_pending_.empty()) maint_pending_.assign(shards_.size(), 0);
  if (maint_pending_[s] != 0) return;
  maint_pending_[s] = 1;
  maint_queue_.push_back(s);
  if (!maint_thread_.joinable()) {
    maint_thread_ = std::thread([this] { MaintenanceLoop(); });
  }
  maint_cv_.notify_one();
}

void ShardedIndex::MaintenanceLoop() {
  for (;;) {
    size_t s = 0;
    {
      std::unique_lock<std::mutex> lk(maint_mu_);
      maint_cv_.wait(lk, [this] {
        return maint_stop_ || !maint_queue_.empty();
      });
      if (maint_stop_) return;
      s = maint_queue_.front();
      maint_queue_.pop_front();
      maint_pending_[s] = 0;
    }
    try {
      MergeFrozen(s);
    } catch (...) {
      // Leave the frozen layer in place: reads stay correct through the
      // overlay, and the next FlushUpdates retries (and surfaces the
      // error) on the caller's thread.
    }
  }
}

void ShardedIndex::StopMaintenance() {
  {
    std::lock_guard<std::mutex> lk(maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  if (maint_thread_.joinable()) maint_thread_.join();
}

IndexStats ShardedIndex::Stats() const {
  IndexStats s;
  s.name = Name();
  s.num_points = live_points_.load(std::memory_order_relaxed);
  s.size_bytes = DirectoryBytes();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto ep = EpochOf(i);
    const IndexStats inner = ep->base->Stats();
    s.size_bytes += inner.size_bytes;
    s.num_models += inner.num_models;
    s.height = std::max(s.height, inner.height);
    for (const DeltaBuffer* d : {ep->delta.get(), ep->merging.get()}) {
      if (d == nullptr) continue;
      s.size_bytes += d->log().size() * sizeof(UpdateOp) +
                      d->entries().size() * sizeof(DeltaBuffer::Entry);
    }
  }
  ++s.height;  // the routing level above the shards
  const uint64_t desc = descents_.load(std::memory_order_relaxed);
  s.avg_query_depth =
      desc == 0 ? 0.0
                : static_cast<double>(
                      invocations_.load(std::memory_order_relaxed)) /
                      static_cast<double>(desc);
  return s;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

/// UpdateOps are written one field at a time (kind byte + point): the
/// struct has padding, so WriteVec's raw-bytes fast path would persist
/// uninitialized memory. Since container v3 the total op count is
/// followed by the frozen-layer count (the first `frozen_n` ops belong
/// to the merging layer), so tooling can report the buffered/frozen
/// split without replaying anything.
void WriteDeltaOps(Serializer& out, const DeltaBuffer* frozen,
                   const DeltaBuffer* active) {
  const uint64_t frozen_n = frozen != nullptr ? frozen->log().size() : 0;
  const uint64_t n =
      frozen_n + (active != nullptr ? active->log().size() : 0);
  out.WritePod<uint64_t>(n);
  out.WritePod<uint64_t>(frozen_n);
  for (const DeltaBuffer* layer : {frozen, active}) {
    if (layer == nullptr) continue;
    for (const UpdateOp& op : layer->log()) {
      out.WritePod<uint8_t>(static_cast<uint8_t>(op.kind));
      out.WritePod(op.pt);
    }
  }
}

}  // namespace

bool ShardedIndex::SaveTo(Serializer& out) const {
  out.WritePod<uint32_t>(static_cast<uint32_t>(shards_.size()));
  partitioner_.WriteTo(out);
  std::vector<std::shared_ptr<const Epoch>> eps(shards_.size());
  std::vector<Rect> regions(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    eps[i] = EpochOf(i);
    regions[i] = eps[i]->region;
  }
  out.WriteVec(regions);
  const size_t live = live_points_.load(std::memory_order_relaxed);
  out.WritePod(live);
  // One self-describing container per shard: the inner kind spec rides
  // inside each, so LoadFrom needs no knowledge of what the shards are —
  // and a shard can itself be a sharded index (recursive specs). The
  // shard's buffered delta log follows its container (frozen ops first —
  // they arrived first), so a save taken under buffered writes loses
  // nothing.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!WriteIndexContainer(out, *eps[i]->base)) return false;
    WriteDeltaOps(out, eps[i]->merging.get(), eps[i]->delta.get());
  }
  return true;
}

bool ShardedIndex::LoadFrom(Deserializer& in) {
  // Serving knobs, not persisted structure: a loaded index fans out and
  // merges with whatever the deployment environment asks for.
  query_threads_ = ResolveQueryThreads(1);
  delta_merge_threshold_ = ResolveDeltaThreshold(256);
  background_merge_ = true;
  uint32_t k = 0;
  if (!in.ReadPod(&k)) return false;
  if (k < 1 || k > 4096) {
    return in.Fail("sharded index shard count out of range");
  }
  if (!partitioner_.ReadFrom(in)) return false;
  if (partitioner_.num_shards() != static_cast<int>(k)) {
    return in.Fail("partitioner shard count disagrees with shard table");
  }
  std::vector<Rect> regions;
  if (!in.ReadVec(&regions)) return false;
  if (regions.size() != k) {
    return in.Fail("region table size disagrees with shard count");
  }
  size_t live = 0;
  if (!in.ReadPod(&live)) return false;
  shards_.clear();
  shards_.reserve(k);
  std::string first_spec;
  for (uint32_t i = 0; i < k; ++i) {
    std::string why;
    std::unique_ptr<SpatialIndex> base = ReadIndexContainer(in, &why);
    if (base == nullptr) {
      return in.Fail("shard " + std::to_string(i) + ": " + why);
    }
    // The builder produces one kind for every shard, and KindSpec()
    // describes the whole index via shard 0 — a payload mixing kinds is
    // crafted, and would make the embedded spec lie about its contents.
    if (i == 0) {
      first_spec = base->KindSpec();
    } else if (base->KindSpec() != first_spec) {
      return in.Fail("sharded payload mixes inner index kinds");
    }
    // Replay the persisted delta log into a fresh active buffer through
    // the same append bookkeeping writers use — the loaded shard's
    // visible state equals the saved one's.
    uint64_t nops = 0;
    if (!in.ReadPod(&nops)) return false;
    // v3 records where the frozen layer ended at save time. The split is
    // informational (tooling: `rsmi_cli info`) — replay still lands every
    // op in one fresh active buffer, because restoring a merging layer
    // here would leave a frozen log nothing ever schedules a merge for.
    uint64_t frozen_n = 0;
    if (!in.ReadPod(&frozen_n)) return false;
    if (frozen_n > nops) {
      return in.Fail("delta log frozen count exceeds total op count");
    }
    if (nops > in.remaining() / (1 + sizeof(Point))) {
      return in.Fail("delta log length exceeds remaining data");
    }
    auto delta = std::make_shared<DeltaBuffer>();
    const auto base_contains = [&base](const Point& p) {
      QueryContext probe;
      return base->PointQuery(p, probe).has_value();
    };
    for (uint64_t j = 0; j < nops; ++j) {
      uint8_t kind = 0;
      UpdateOp op;
      if (!in.ReadPod(&kind) || !in.ReadPod(&op.pt)) return false;
      if (kind > static_cast<uint8_t>(UpdateOp::Kind::kDelete)) {
        return in.Fail("delta log op kind out of range");
      }
      op.kind = static_cast<UpdateOp::Kind>(kind);
      if (!delta->AppendOp(op, base_contains)) {
        // The log records only ops that hit; a missing delete target
        // means the payload and the shard disagree.
        return in.Fail("delta log replays a delete of a missing point");
      }
    }
    auto epoch = std::make_shared<Epoch>();
    epoch->base = std::move(base);
    epoch->delta = std::move(delta);
    epoch->region = regions[i];
    auto shard = std::make_unique<Shard>();
    shard->epoch = std::move(epoch);
    shards_.push_back(std::move(shard));
  }
  live_points_.store(live, std::memory_order_relaxed);
  return true;
}

namespace {

/// Walks every point stored under `index` — directly from its block
/// store, or recursively through the shards of a nested ShardedIndex
/// (whose own store is an empty sink). Returns false as soon as `fn`
/// rejects a point.
bool ForEachStoredPoint(const SpatialIndex& index,
                        const std::function<bool(const Point&)>& fn) {
  if (const auto* nested = dynamic_cast<const ShardedIndex*>(&index)) {
    for (int i = 0; i < nested->num_shards(); ++i) {
      if (!ForEachStoredPoint(nested->shard(i), fn)) return false;
    }
    return true;
  }
  const BlockStore& store = index.block_store();
  for (int id = 0; id < static_cast<int>(store.NumBlocks()); ++id) {
    for (const PointEntry& e : store.Peek(id).entries) {
      if (!fn(e.pt)) return false;
    }
  }
  return true;
}

}  // namespace

bool ShardedIndex::ValidateStructure(std::string* error) const {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!partitioner_.Validate(error)) return false;
  if (partitioner_.num_shards() != num_shards()) {
    return fail("partitioner shard count disagrees with shard table");
  }
  int64_t points = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto ep = EpochOf(i);
    if (ep->base == nullptr) return fail("null shard");
    if (!ep->base->ValidateStructure(error)) return false;
    points += static_cast<int64_t>(ep->base->Stats().num_points);
    if (ep->merging != nullptr) points += ep->merging->NetCount();
    points += ep->delta->NetCount();
    // Window/kNN fan-out prunes shards by region, so a region that does
    // not cover its shard's stored or buffered points silently drops
    // results — reject it here (the load path runs this as its final
    // backstop).
    if (!ForEachStoredPoint(*ep->base, [&](const Point& p) {
          return ep->region.Valid() && ep->region.Contains(p);
        })) {
      return fail("shard " + std::to_string(i) +
                  " stores a point outside its recorded region");
    }
    for (const DeltaBuffer* d : {ep->merging.get(), ep->delta.get()}) {
      if (d == nullptr) continue;
      for (const DeltaBuffer::Entry& e : d->entries()) {
        if (e.pending_inserts > 0 &&
            !(ep->region.Valid() && ep->region.Contains(e.pt))) {
          return fail("shard " + std::to_string(i) +
                      " buffers an insert outside its recorded region");
        }
      }
    }
  }
  if (points !=
      static_cast<int64_t>(live_points_.load(std::memory_order_relaxed))) {
    return fail("sharded live-point count disagrees with shard totals");
  }
  return true;
}

}  // namespace rsmi
