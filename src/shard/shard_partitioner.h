#ifndef RSMI_SHARD_SHARD_PARTITIONER_H_
#define RSMI_SHARD_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "io/serializer.h"

namespace rsmi {

/// Build parameters of the sample-based Z-order partitioner.
struct ShardPartitionerConfig {
  /// Requested shard count K. The effective count can be lower when the
  /// sample has fewer distinct Z-values than K (degenerate/tiny data).
  int num_shards = 4;
  /// Build-time sample size: the split keys are quantiles of a
  /// deterministic sample of at most this many points (0 = use all).
  int sample_cap = 65536;
  /// Bits per dimension of the routing grid the Z-values live on.
  int z_order = 16;
  /// Seed of the deterministic sampling.
  uint64_t seed = 42;
};

/// Cheap global space partitioner: splits the data space into K
/// contiguous Z-order (Morton) ranges whose boundaries are quantiles of
/// a sample of the build data, so each shard receives a roughly equal
/// share of the points (LiLIS-style partition-then-learn; partition
/// quality dominates learned-index performance, arXiv:2008.10349).
///
/// Routing is an in-memory binary search over the K-1 split keys —
/// O(log K), no block accesses, safe to call from any number of threads
/// concurrently (the partitioner is immutable after construction).
/// Points outside the build-time bounds (later insertions) are clamped
/// onto the grid, so every point always routes to exactly one shard.
class ShardPartitioner {
 public:
  /// Single-shard catch-all (everything routes to shard 0); also the
  /// shell state filled by ReadFrom.
  ShardPartitioner() = default;

  /// Computes the split keys over `pts` (deterministic for a fixed
  /// config). With fewer points than shards, the effective shard count
  /// shrinks so that no shard can start out empty.
  ShardPartitioner(const std::vector<Point>& pts,
                   const ShardPartitionerConfig& cfg);

  /// Effective shard count (>= 1, <= cfg.num_shards).
  int num_shards() const { return static_cast<int>(splits_.size()) + 1; }

  /// Owning shard of `p`: index of the Z-range containing its Z-value.
  int ShardOf(const Point& p) const;

  /// Z-value of `p` on the routing grid (clamped into bounds()).
  uint64_t ZValueOf(const Point& p) const;

  /// Bounds of the build data (the grid's domain).
  const Rect& bounds() const { return bounds_; }

  /// Ascending split keys; shard i owns Z-values in
  /// [splits[i-1], splits[i]) with open ends at both sides.
  const std::vector<uint64_t>& splits() const { return splits_; }

  /// Binary persistence (the shard directory is part of a saved sharded
  /// deployment even when the inner indices are rebuilt from data).
  void WriteTo(Serializer& out) const;
  bool ReadFrom(Deserializer& in);

  /// In-memory footprint of the routing structure.
  size_t SizeBytes() const {
    return sizeof(*this) + splits_.capacity() * sizeof(uint64_t);
  }

  /// Invariants: valid bounds, sane grid order, strictly ascending
  /// splits. Returns false with a description in `*error` (if non-null).
  bool Validate(std::string* error) const;

 private:
  Rect bounds_ = Rect::UnitSquare();
  int z_order_ = 16;
  std::vector<uint64_t> splits_;
};

}  // namespace rsmi

#endif  // RSMI_SHARD_SHARD_PARTITIONER_H_
