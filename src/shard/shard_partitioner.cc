#include "shard/shard_partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sfc/z_curve.h"

namespace rsmi {

ShardPartitioner::ShardPartitioner(const std::vector<Point>& pts,
                                   const ShardPartitionerConfig& cfg) {
  z_order_ = std::max(1, std::min(32, cfg.z_order));
  bounds_ = pts.empty() ? Rect::UnitSquare()
                        : Rect::Bound(pts.begin(), pts.end());
  // Degenerate (zero-extent) dimensions get a nominal extent so the
  // grid-coordinate division below stays finite.
  if (bounds_.hi.x <= bounds_.lo.x) bounds_.hi.x = bounds_.lo.x + 1.0;
  if (bounds_.hi.y <= bounds_.lo.y) bounds_.hi.y = bounds_.lo.y + 1.0;

  const int want = std::max(1, cfg.num_shards);
  if (want == 1 || pts.empty()) return;

  // Deterministic sample of Z-values. Uniform index draws (with
  // replacement) keep the sample unbiased even when the input arrives
  // pre-sorted in curve order.
  const size_t cap = cfg.sample_cap > 0
                         ? static_cast<size_t>(cfg.sample_cap)
                         : pts.size();
  std::vector<uint64_t> zs;
  if (pts.size() <= cap) {
    zs.reserve(pts.size());
    for (const Point& p : pts) zs.push_back(ZValueOf(p));
  } else {
    Rng rng(cfg.seed ^ 0x5ba9d3c1f02e8765ULL);
    zs.reserve(cap);
    for (size_t i = 0; i < cap; ++i) {
      const int64_t j =
          rng.UniformInt(0, static_cast<int64_t>(pts.size()) - 1);
      zs.push_back(ZValueOf(pts[static_cast<size_t>(j)]));
    }
  }
  std::sort(zs.begin(), zs.end());

  // Split keys at the sample's K-quantiles. Duplicates collapse (the
  // effective shard count shrinks), and every retained split is itself a
  // sampled — hence existing — data key, so each resulting Z-range holds
  // at least one build point.
  splits_.reserve(static_cast<size_t>(want) - 1);
  for (int i = 1; i < want; ++i) {
    const size_t rank = zs.size() * static_cast<size_t>(i) /
                        static_cast<size_t>(want);
    const uint64_t key = zs[rank];
    if (splits_.empty() || key > splits_.back()) splits_.push_back(key);
  }
  // A split equal to the global minimum would leave shard 0 empty.
  if (!splits_.empty() && splits_.front() <= zs.front()) {
    splits_.erase(splits_.begin());
  }
}

uint64_t ShardPartitioner::ZValueOf(const Point& p) const {
  const double cells = static_cast<double>(1ull << z_order_);
  const auto grid = [&](double v, double lo, double hi) {
    const double t = (v - lo) / (hi - lo);
    const double clamped = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    const double cell = std::floor(clamped * cells);
    return static_cast<uint32_t>(
        std::min(cell, cells - 1.0));
  };
  return ZEncode(grid(p.x, bounds_.lo.x, bounds_.hi.x),
                 grid(p.y, bounds_.lo.y, bounds_.hi.y), z_order_);
}

int ShardPartitioner::ShardOf(const Point& p) const {
  if (splits_.empty()) return 0;
  const uint64_t z = ZValueOf(p);
  return static_cast<int>(
      std::upper_bound(splits_.begin(), splits_.end(), z) -
      splits_.begin());
}

void ShardPartitioner::WriteTo(Serializer& out) const {
  out.WritePod(bounds_);
  out.WritePod(z_order_);
  out.WriteVec(splits_);
}

bool ShardPartitioner::ReadFrom(Deserializer& in) {
  return in.ReadPod(&bounds_) && in.ReadPod(&z_order_) &&
         in.ReadVec(&splits_);
}

bool ShardPartitioner::Validate(std::string* error) const {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!bounds_.Valid()) return fail("partitioner bounds are invalid");
  if (z_order_ < 1 || z_order_ > 32) {
    return fail("partitioner z_order out of [1, 32]");
  }
  for (size_t i = 1; i < splits_.size(); ++i) {
    if (splits_[i - 1] >= splits_[i]) {
      return fail("partitioner split keys are not strictly ascending");
    }
  }
  return true;
}

}  // namespace rsmi
