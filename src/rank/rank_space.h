#ifndef RSMI_RANK_RANK_SPACE_H_
#define RSMI_RANK_RANK_SPACE_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "sfc/curve.h"

namespace rsmi {

/// Output of the rank-space ordering technique of Section 3.1 (steps 1-2
/// of the R-tree packing strategy of Qi et al. [37, 38]).
///
/// Given n points, the rank space is an n x n grid where each row and each
/// column contains exactly one point: the coordinates of point i in rank
/// space are (rank_x[i], rank_y[i]). An SFC then assigns each point a
/// curve value; `order` lists the input indices sorted by curve value,
/// which is the order in which points are packed into blocks (step 3).
struct RankSpaceOrdering {
  std::vector<uint32_t> rank_x;      ///< x-rank per input index
  std::vector<uint32_t> rank_y;      ///< y-rank per input index
  std::vector<uint64_t> curve_value; ///< SFC value per input index
  std::vector<size_t> order;         ///< input indices sorted by curve value
  int grid_order = 1;                ///< SFC order: ceil(log2 n)
};

/// Computes the rank-space ordering of `pts` under curve `curve`.
///
/// Ranks follow the paper's tie-breaking rule: x-ranks break ties by
/// y-coordinate and vice versa, so the mapping is well defined whenever no
/// two points share both coordinates.
RankSpaceOrdering ComputeRankSpaceOrdering(const std::vector<Point>& pts,
                                           CurveType curve);

}  // namespace rsmi

#endif  // RSMI_RANK_RANK_SPACE_H_
