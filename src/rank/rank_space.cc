#include "rank/rank_space.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rsmi {

RankSpaceOrdering ComputeRankSpaceOrdering(const std::vector<Point>& pts,
                                           CurveType curve) {
  RankSpaceOrdering out;
  const size_t n = pts.size();
  out.rank_x.resize(n);
  out.rank_y.resize(n);
  out.curve_value.resize(n);
  out.order.resize(n);
  if (n == 0) return out;

  // Smallest power-of-two grid that distinguishes all n ranks.
  int order = 1;
  while ((1ull << order) < n) ++order;
  out.grid_order = order;

  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);

  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return LessByXThenY{}(pts[a], pts[b]);
  });
  for (size_t r = 0; r < n; ++r) out.rank_x[idx[r]] = static_cast<uint32_t>(r);

  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return LessByYThenX{}(pts[a], pts[b]);
  });
  for (size_t r = 0; r < n; ++r) out.rank_y[idx[r]] = static_cast<uint32_t>(r);

  for (size_t i = 0; i < n; ++i) {
    out.curve_value[i] =
        CurveEncode(curve, out.rank_x[i], out.rank_y[i], order);
  }

  std::iota(out.order.begin(), out.order.end(), 0);
  std::sort(out.order.begin(), out.order.end(), [&](size_t a, size_t b) {
    return out.curve_value[a] < out.curve_value[b];
  });
  return out;
}

}  // namespace rsmi
