#ifndef RSMI_NN_KERNEL_MATH_H_
#define RSMI_NN_KERNEL_MATH_H_

// The *algorithm* shared by every inference kernel: the exact IEEE-754
// operation sequence of the MLP forward pass (explicit FMA plus a
// Cephes-style rational exp). Kernels (scalar, AVX2, AVX-512, and the
// shape-specialized instantiations) are *schedules* of this algorithm —
// they may reorder samples, block them, or widen lanes, but every lane
// executes this op sequence unchanged, which is what keeps all dispatch
// paths bit-identical (tests/inference_engine_test.cc asserts it).
//
// std::exp cannot be used here: libm implementations differ across
// platforms and cannot be mirrored lane-for-lane in SIMD, which would
// break the build-time / query-time reproducibility the learned index
// depends on. The rational approximation below is the classic Cephes
// expm-style kernel (~1 ulp over the clamped range).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__GNUC__) || defined(__clang__)
#define RSMI_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define RSMI_ALWAYS_INLINE inline
#endif

namespace rsmi {
namespace nn_math {

constexpr double kExpClamp = 708.0;  // keeps 2^n finite and normal
constexpr double kLog2E = 1.44269504088896340736;
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
constexpr double kExpP0 = 1.26177193074810590878e-4;
constexpr double kExpP1 = 3.02994407707441961300e-2;
constexpr double kExpP2 = 9.99999999999999999910e-1;
constexpr double kExpQ0 = 3.00198505138664455042e-6;
constexpr double kExpQ1 = 2.52448340349684104192e-3;
constexpr double kExpQ2 = 2.27265548208155028766e-1;
constexpr double kExpQ3 = 2.00000000000000000005e0;

RSMI_ALWAYS_INLINE double FastExp(double x) {
  x = std::min(kExpClamp, std::max(-kExpClamp, x));
  const double n = std::floor(std::fma(x, kLog2E, 0.5));
  double r = std::fma(n, -kLn2Hi, x);
  r = std::fma(n, -kLn2Lo, r);
  const double rr = r * r;
  const double p = r * std::fma(rr, std::fma(rr, kExpP0, kExpP1), kExpP2);
  const double q =
      std::fma(rr, std::fma(rr, std::fma(rr, kExpQ0, kExpQ1), kExpQ2), kExpQ3);
  const double e = std::fma(2.0, p / (q - p), 1.0);
  // 2^n via exponent bits; n is in [-1021, 1022] after the clamp.
  const uint64_t bits = static_cast<uint64_t>(static_cast<int64_t>(n) + 1023)
                        << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return e * scale;
}

RSMI_ALWAYS_INLINE double FastSigmoid(double a) {
  return 1.0 / (1.0 + FastExp(-a));
}

RSMI_ALWAYS_INLINE double PredictOneImpl(int in, int hidden, const double* w1,
                                         const double* b1, const double* w2,
                                         double b2, const double* f) {
  double acc = b2;
  for (int j = 0; j < hidden; ++j) {
    double a = b1[j];
    const double* wrow = w1 + static_cast<size_t>(j) * in;
    for (int i = 0; i < in; ++i) a = std::fma(wrow[i], f[i], a);
    acc = std::fma(w2[j], FastSigmoid(a), acc);
  }
  return acc;
}

RSMI_ALWAYS_INLINE void PredictBatchImpl(int in, int hidden, const double* w1,
                                         const double* b1, const double* w2,
                                         double b2, const double* xs, size_t n,
                                         double* out) {
  for (size_t s = 0; s < n; ++s) {
    out[s] = PredictOneImpl(in, hidden, w1, b1, w2, b2, xs + s * in);
  }
}

}  // namespace nn_math
}  // namespace rsmi

#endif  // RSMI_NN_KERNEL_MATH_H_
