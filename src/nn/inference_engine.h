#ifndef RSMI_NN_INFERENCE_ENGINE_H_
#define RSMI_NN_INFERENCE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace rsmi {

/// Forward-pass kernels PredictBatch can dispatch to.
enum class InferenceKernel {
  /// Portable scalar kernel (always available, every platform).
  kScalar,
  /// 4-wide AVX2+FMA kernel, vectorized across the batch dimension
  /// (x86-64 with GCC/Clang only; selected at runtime via cpuid).
  kAvx2,
  /// 8-wide AVX-512 (F+DQ) kernel, same schedule widened to zmm.
  kAvx512,
  /// Shape-specialized fully-unrolled kernel for the fixed MLP shapes
  /// the hidden-dim rule produces, instantiated at the widest ISA the
  /// CPU supports and bound per-engine at snapshot time.
  kSpecialized,
};

/// Display name: "scalar" / "avx2" / "avx512" / "specialized".
std::string InferenceKernelName(InferenceKernel k);

/// The *generic* kernel PredictBatch dispatches to in this process for
/// shapes without a specialized instantiation: the widest instruction
/// set the CPU supports, unless overridden by environment variables
/// (decided once at first use):
///
///   RSMI_FORCE_KERNEL=scalar|avx2|avx512|specialized
///     Pins the dispatch path. `scalar`/`avx2`/`avx512` also disable
///     shape specialization so the generic path is what actually runs;
///     `specialized` is the default policy made explicit. Unavailable
///     requests fall back down the chain (avx512 -> avx2 -> scalar).
///   RSMI_FORCE_SCALAR=1
///     Back-compat alias for RSMI_FORCE_KERNEL=scalar (ignored when
///     RSMI_FORCE_KERNEL is set).
///
/// Forcing a kernel never changes results — every kernel is
/// bit-identical by construction.
InferenceKernel ActiveInferenceKernel();

/// Human-readable summary of the process-wide dispatch policy, e.g.
/// "specialized+avx512" (specialized kernels where the shape matches,
/// generic AVX-512 otherwise) or "scalar" — for CLI / loadgen reports.
std::string ActiveInferenceKernelDescription();

/// True if `k` can run on this machine and build. For kSpecialized this
/// means *some* SIMD ISA is available to host specialized kernels; use
/// HasSpecializedKernelShape for the per-shape check.
bool InferenceKernelAvailable(InferenceKernel k);

/// True if (input_dim, hidden_dim) has a specialized instantiation in
/// this build (shape-set membership; independent of the CPU).
bool HasSpecializedKernelShape(int input_dim, int hidden_dim);

/// Batch-chunk width (in samples) for the fused level-synchronous
/// descents (RsmiIndex / ZmIndex): descents slice each per-node segment
/// into chunks of this many samples so the feature/prediction staging
/// buffers stay cache-resident. Autotuned once per process with a quick
/// micro-calibration over a representative engine shape; override with
/// RSMI_BATCH_CHUNK=<n>. Chunking never changes results or query
/// counters — kernels are batch-size invariant.
size_t BatchDescentChunkWidth();

/// Batched forward pass over one trained MLP's weights.
///
/// The engine snapshots the weights into a flat, 64-byte-aligned buffer
/// (`[w1 | b1 | w2 | b2]`, the hot descent state of one sub-model on a
/// single cache-line-aligned run) and serves `PredictBatch`, which
/// evaluates `n` samples per call instead of paying per-sample call and
/// cache-miss overhead — the per-level building block of the batched
/// RSMI/ZM descents (src/core/, src/baselines/) and of the cross-query
/// grouping in the batch query engine (src/exec/).
///
/// The kernel is bound once at snapshot time (construction, copy, and
/// persistence load all rebuild the engine): if the model's shape is in
/// the specialized set and a SIMD ISA is available, `PredictBatch`
/// calls the fully-unrolled shape-specialized kernel directly with no
/// per-call dispatch; otherwise it calls the process-wide generic
/// kernel.
///
/// Every kernel computes the *same IEEE-754 operation sequence* per
/// sample (explicit FMA plus a shared polynomial exp in the scalar and
/// all vector schedules — see nn/kernel_math.h), so the results are
/// bit-identical across dispatch paths and machines — and bit-identical
/// to `Mlp::Predict`, which delegates to this engine's scalar kernel.
/// That invariant is what keeps learned-index structures reproducible:
/// the grouping decisions made with batch inference at build time are
/// retraced exactly by scalar inference at query time and vice versa
/// (tests/inference_engine_test.cc asserts it to the last bit).
///
/// Thread-safety: immutable after construction; any number of threads
/// may call the predict methods concurrently.
class InferenceEngine {
 public:
  /// Snapshots the weights: `w1` is hidden x input row-major, `b1` and
  /// `w2` have `hidden_dim` entries. Binds the kernel for this shape.
  InferenceEngine(int input_dim, int hidden_dim, const double* w1,
                  const double* b1, const double* w2, double b2);

  InferenceEngine(const InferenceEngine& other);
  InferenceEngine& operator=(const InferenceEngine& other);
  InferenceEngine(InferenceEngine&&) noexcept = default;
  InferenceEngine& operator=(InferenceEngine&&) noexcept = default;

  /// Forward pass on `n` samples (`xs` holds n * input_dim row-major
  /// features) through the kernel bound at snapshot time; writes `n`
  /// outputs.
  void PredictBatch(const double* xs, size_t n, double* out) const;

  /// Same, through an explicitly chosen kernel (parity tests exercise
  /// every available path). Falls back to scalar when `k` is not
  /// available on this machine (or, for kSpecialized, when the shape
  /// has no specialized instantiation).
  void PredictBatchWithKernel(InferenceKernel k, const double* xs, size_t n,
                              double* out) const;

  /// Single-sample forward pass (the scalar kernel; bit-identical to any
  /// PredictBatch lane).
  double Predict(const double* features) const;

  int input_dim() const { return in_; }
  int hidden_dim() const { return hidden_; }

  /// The kernel PredictBatch is bound to (decided at snapshot time).
  InferenceKernel bound_kernel() const { return bound_kind_; }

  /// Display name of the bound kernel; specialized kernels include the
  /// host ISA, e.g. "specialized(avx512)".
  std::string bound_kernel_name() const;

  /// Exact bytes of the engine's weight snapshot allocation (the flat
  /// aligned buffer the bound kernel reads). Size accounting in
  /// Mlp::SizeBytes / index Stats() includes this.
  size_t SnapshotBytes() const { return len_ * sizeof(double); }

 private:
  struct AlignedDeleter {
    void operator()(double* p) const;
  };

  void CopyFrom(const InferenceEngine& other);
  void BindKernel();

  int in_;
  int hidden_;
  size_t len_ = 0;  ///< doubles in the flat buffer
  /// Flat 64-byte-aligned weight buffer: [w1 (h*in) | b1 (h) | w2 (h) | b2].
  std::unique_ptr<double[], AlignedDeleter> data_;
  /// Snapshot-time kernel binding (no per-call dispatch).
  InferenceKernel bound_kind_ = InferenceKernel::kScalar;
  InferenceKernel spec_isa_ = InferenceKernel::kScalar;
  void (*batch_)(int, int, const double*, const double*, const double*,
                 double, const double*, size_t, double*) = nullptr;
  double (*one_)(int, int, const double*, const double*, const double*,
                 double, const double*) = nullptr;
};

}  // namespace rsmi

#endif  // RSMI_NN_INFERENCE_ENGINE_H_
