#ifndef RSMI_NN_INFERENCE_ENGINE_H_
#define RSMI_NN_INFERENCE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace rsmi {

/// Forward-pass kernels PredictBatch can dispatch to.
enum class InferenceKernel {
  /// Portable scalar kernel (always available, every platform).
  kScalar,
  /// 4-wide AVX2+FMA kernel, vectorized across the batch dimension
  /// (x86-64 with GCC/Clang only; selected at runtime via cpuid).
  kAvx2,
};

/// Display name: "scalar" / "avx2".
std::string InferenceKernelName(InferenceKernel k);

/// The kernel PredictBatch dispatches to in this process: the widest
/// instruction set the CPU supports, unless the RSMI_FORCE_SCALAR
/// environment variable is set non-zero (the escape hatch pins the
/// scalar kernel; decided once at first use). Forcing scalar keeps the
/// vector units off the inference path but does not change the
/// arithmetic — every kernel is bit-identical by construction.
InferenceKernel ActiveInferenceKernel();

/// True if `k` can run on this machine and build.
bool InferenceKernelAvailable(InferenceKernel k);

/// Batched forward pass over one trained MLP's weights.
///
/// The engine snapshots the weights into a flat, 64-byte-aligned buffer
/// (`[w1 | b1 | w2 | b2]`, the hot descent state of one sub-model on a
/// single cache-line-aligned run) and serves `PredictBatch`, which
/// evaluates `n` samples per call instead of paying per-sample call and
/// cache-miss overhead — the per-level building block of the batched
/// RSMI/ZM descents (src/core/, src/baselines/) and of the cross-query
/// grouping in the batch query engine (src/exec/).
///
/// Every kernel computes the *same IEEE-754 operation sequence* per
/// sample (explicit FMA plus a shared polynomial exp in both the scalar
/// and the vector code), so the results are bit-identical across
/// dispatch paths and machines — and bit-identical to `Mlp::Predict`,
/// which delegates to this engine's scalar kernel. That invariant is
/// what keeps learned-index structures reproducible: the grouping
/// decisions made with batch inference at build time are retraced
/// exactly by scalar inference at query time and vice versa
/// (tests/inference_engine_test.cc asserts it to the last bit).
///
/// Thread-safety: immutable after construction; any number of threads
/// may call the predict methods concurrently.
class InferenceEngine {
 public:
  /// Snapshots the weights: `w1` is hidden x input row-major, `b1` and
  /// `w2` have `hidden_dim` entries.
  InferenceEngine(int input_dim, int hidden_dim, const double* w1,
                  const double* b1, const double* w2, double b2);

  InferenceEngine(const InferenceEngine& other);
  InferenceEngine& operator=(const InferenceEngine& other);
  InferenceEngine(InferenceEngine&&) noexcept = default;
  InferenceEngine& operator=(InferenceEngine&&) noexcept = default;

  /// Forward pass on `n` samples (`xs` holds n * input_dim row-major
  /// features) through the active kernel; writes `n` outputs.
  void PredictBatch(const double* xs, size_t n, double* out) const;

  /// Same, through an explicitly chosen kernel (parity tests exercise
  /// every available path). Falls back to scalar when `k` is not
  /// available on this machine.
  void PredictBatchWithKernel(InferenceKernel k, const double* xs, size_t n,
                              double* out) const;

  /// Single-sample forward pass (the scalar kernel; bit-identical to any
  /// PredictBatch lane).
  double Predict(const double* features) const;

  int input_dim() const { return in_; }
  int hidden_dim() const { return hidden_; }

 private:
  struct AlignedDeleter {
    void operator()(double* p) const;
  };

  void CopyFrom(const InferenceEngine& other);

  int in_;
  int hidden_;
  size_t len_ = 0;  ///< doubles in the flat buffer
  /// Flat 64-byte-aligned weight buffer: [w1 (h*in) | b1 (h) | w2 (h) | b2].
  std::unique_ptr<double[], AlignedDeleter> data_;
};

}  // namespace rsmi

#endif  // RSMI_NN_INFERENCE_ENGINE_H_
