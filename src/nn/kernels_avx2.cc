// AVX2+FMA kernel schedules. This translation unit is compiled with
// -mavx2 -mfma (per-source flags in src/CMakeLists.txt) on x86 builds;
// callers must gate on the runtime cpuid check in inference_engine.cc
// before invoking anything returned from here. On targets where the
// flags are absent the lookups return null and the dispatcher falls
// back down the chain.

#include "nn/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__)

#include <immintrin.h>

#include "nn/kernels_simd_body.h"

namespace rsmi {
namespace kernels {
namespace {

struct V4 {
  using Vec = __m256d;
  static constexpr int kBlocks = 2;
  static constexpr size_t kWidth = 4;
  static RSMI_ALWAYS_INLINE Vec Load(const double* p) {
    return _mm256_loadu_pd(p);
  }
  static RSMI_ALWAYS_INLINE void Store(double* p, Vec v) {
    _mm256_storeu_pd(p, v);
  }
  static RSMI_ALWAYS_INLINE Vec Set1(double x) { return _mm256_set1_pd(x); }
  static RSMI_ALWAYS_INLINE Vec Min(Vec a, Vec b) {
    return _mm256_min_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Max(Vec a, Vec b) {
    return _mm256_max_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Floor(Vec a) { return _mm256_floor_pd(a); }
  static RSMI_ALWAYS_INLINE Vec Fmadd(Vec a, Vec b, Vec c) {
    return _mm256_fmadd_pd(a, b, c);
  }
  static RSMI_ALWAYS_INLINE Vec Fmsub(Vec a, Vec b, Vec c) {
    return _mm256_fmsub_pd(a, b, c);
  }
  static RSMI_ALWAYS_INLINE Vec Mul(Vec a, Vec b) {
    return _mm256_mul_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Add(Vec a, Vec b) {
    return _mm256_add_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Sub(Vec a, Vec b) {
    return _mm256_sub_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Div(Vec a, Vec b) {
    return _mm256_div_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Neg(Vec a) {
    return _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
  }
  // 2^n via exponent bits, mirroring the scalar path. n is integral and
  // within int32 range, so the (round-to-nearest) cvt is exact.
  static RSMI_ALWAYS_INLINE Vec Exp2FromN(Vec n) {
    const __m128i n32 = _mm256_cvtpd_epi32(n);
    const __m256i n64 = _mm256_cvtepi32_epi64(n32);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    return _mm256_castsi256_pd(bits);
  }
  // e * 2^n (n integral, product normal): exact either way, so the
  // exponent-bits multiply matches vscalefpd bit-for-bit.
  static RSMI_ALWAYS_INLINE Vec ScaleByExp2(Vec e, Vec n) {
    return _mm256_mul_pd(e, Exp2FromN(n));
  }
  static RSMI_ALWAYS_INLINE void LoadPoints2(const double* p, Vec* xv,
                                             Vec* yv) {
    const Vec v0 = _mm256_loadu_pd(p);      // x0 y0 x1 y1
    const Vec v1 = _mm256_loadu_pd(p + 4);  // x2 y2 x3 y3
    *xv = _mm256_unpacklo_pd(v0, v1);       // x0 x2 x1 x3
    *yv = _mm256_unpackhi_pd(v0, v1);       // y0 y2 y1 y3
  }
  // Undo the unpack permutation (lanes are o0 o2 o1 o3).
  static RSMI_ALWAYS_INLINE void StorePoints2(double* p, Vec acc) {
    _mm256_storeu_pd(p, _mm256_permute4x64_pd(acc, _MM_SHUFFLE(3, 1, 2, 0)));
  }
};

}  // namespace

BatchFn GenericAvx2() { return &GenericBatch<V4>; }

BatchFn SpecializedAvx2(int in, int hidden) {
#define RSMI_SPEC_ROW(IN, H) \
  if (in == IN && hidden == H) return &SpecBatch<V4, IN, H>;
  RSMI_SPECIALIZED_SHAPES(RSMI_SPEC_ROW)
#undef RSMI_SPEC_ROW
  return nullptr;
}

}  // namespace kernels
}  // namespace rsmi

#else  // ISA unavailable in this build

namespace rsmi {
namespace kernels {

BatchFn GenericAvx2() { return nullptr; }
BatchFn SpecializedAvx2(int /*in*/, int /*hidden*/) { return nullptr; }

}  // namespace kernels
}  // namespace rsmi

#endif
