#ifndef RSMI_NN_KERNELS_SIMD_BODY_H_
#define RSMI_NN_KERNELS_SIMD_BODY_H_

// Shared SIMD *schedules* of the kernel algorithm (nn/kernel_math.h),
// templated over an ISA traits struct `V` (__m256d or __m512d ops).
// Include only from the per-ISA translation units — the templates are
// instantiated there, under that file's -m flags. Every lane of every
// schedule executes the scalar op sequence unchanged; schedules only
// decide lane width, sample blocking, and unrolling, so bit-identity
// across kernels holds by construction.
//
// Traits contract (all static):
//   using Vec; kWidth;
//   Load/Store (kWidth doubles), Set1, Min, Max, Floor, Fmadd (fused),
//   Mul, Add, Sub, Div, Neg (flip sign bit), Exp2FromN (2^n via
//   exponent bits for integral n), LoadPoints2 (deinterleave kWidth
//   interleaved x,y pairs into an x and a y vector, lane order chosen
//   by the ISA), StorePoints2 (store undoing LoadPoints2's lane order).

#include <cstddef>

#include "nn/kernel_math.h"

#if defined(__clang__)
#define RSMI_UNROLL_FULL _Pragma("unroll")
#elif defined(__GNUC__)
#define RSMI_UNROLL_FULL _Pragma("GCC unroll 64")
#else
#define RSMI_UNROLL_FULL
#endif

namespace rsmi {
namespace kernels {

template <class V>
RSMI_ALWAYS_INLINE typename V::Vec FastExpVec(typename V::Vec x) {
  using nn_math::kExpClamp;
  using Vec = typename V::Vec;
  x = V::Min(V::Set1(kExpClamp), V::Max(V::Set1(-kExpClamp), x));
  const Vec n =
      V::Floor(V::Fmadd(x, V::Set1(nn_math::kLog2E), V::Set1(0.5)));
  Vec r = V::Fmadd(n, V::Set1(-nn_math::kLn2Hi), x);
  r = V::Fmadd(n, V::Set1(-nn_math::kLn2Lo), r);
  const Vec rr = V::Mul(r, r);
  const Vec p = V::Mul(
      r, V::Fmadd(rr,
                  V::Fmadd(rr, V::Set1(nn_math::kExpP0),
                           V::Set1(nn_math::kExpP1)),
                  V::Set1(nn_math::kExpP2)));
  const Vec q = V::Fmadd(
      rr,
      V::Fmadd(rr,
               V::Fmadd(rr, V::Set1(nn_math::kExpQ0),
                        V::Set1(nn_math::kExpQ1)),
               V::Set1(nn_math::kExpQ2)),
      V::Set1(nn_math::kExpQ3));
  const Vec e =
      V::Fmadd(V::Set1(2.0), V::Div(p, V::Sub(q, p)), V::Set1(1.0));
  return V::Mul(e, V::Exp2FromN(n));
}

template <class V>
RSMI_ALWAYS_INLINE typename V::Vec FastSigmoidVec(typename V::Vec a) {
  return V::Div(V::Set1(1.0),
                V::Add(V::Set1(1.0), FastExpVec<V>(V::Neg(a))));
}

// Specialized-schedule sigmoid: computes the exact same doubles as
// FastSigmoidVec(a) with fewer instructions. Two bit-identical
// rewrites (each intermediate rounds once on the same real value, so
// every lane matches the scalar kernel to the last bit):
//
//  1. The input negation x = -a is folded away. With the intrinsic
//     semantics min(a,b) = a<b?a:b / max(a,b) = a>b?a:b, one can show
//     case-by-case (including NaN pass-through and +-0) that
//       min(H, max(-H, -a)) == -(max(-H, min(H, a))),
//     so the clamped negated input is -w for w = Max(-H, Min(H, a)).
//     The two uses of x then carry the sign in exact constant/operator
//     form: fma(x, log2e, .5) == fma(w, -log2e, .5)  (sign flip of a
//     product operand is exact), and fma(n, -ln2hi, x) == n*(-ln2hi) -
//     w == fmsub(n, -ln2hi, w) (same single-rounded value).
//  2. The 2^n scaling goes through V::ScaleByExp2: e * 2^n where n is
//     integral in [-1021, 1022] and e in (0.70, 1.42), so the product
//     is normal and *exact* — any instruction computing e * 2^n (the
//     exponent-bits multiply, or one vscalefpd on AVX-512) yields the
//     identical double.
template <class V>
RSMI_ALWAYS_INLINE typename V::Vec FastSigmoidSpec(typename V::Vec a) {
  using nn_math::kExpClamp;
  using Vec = typename V::Vec;
  const Vec w =
      V::Max(V::Set1(-kExpClamp), V::Min(V::Set1(kExpClamp), a));
  const Vec n =
      V::Floor(V::Fmadd(w, V::Set1(-nn_math::kLog2E), V::Set1(0.5)));
  Vec r = V::Fmsub(n, V::Set1(-nn_math::kLn2Hi), w);
  r = V::Fmadd(n, V::Set1(-nn_math::kLn2Lo), r);
  const Vec rr = V::Mul(r, r);
  const Vec p = V::Mul(
      r, V::Fmadd(rr,
                  V::Fmadd(rr, V::Set1(nn_math::kExpP0),
                           V::Set1(nn_math::kExpP1)),
                  V::Set1(nn_math::kExpP2)));
  const Vec q = V::Fmadd(
      rr,
      V::Fmadd(rr,
               V::Fmadd(rr, V::Set1(nn_math::kExpQ0),
                        V::Set1(nn_math::kExpQ1)),
               V::Set1(nn_math::kExpQ2)),
      V::Set1(nn_math::kExpQ3));
  const Vec e =
      V::Fmadd(V::Set1(2.0), V::Div(p, V::Sub(q, p)), V::Set1(1.0));
  const Vec ex = V::ScaleByExp2(e, n);
  return V::Div(V::Set1(1.0), V::Add(V::Set1(1.0), ex));
}

// Generic shape-agnostic schedule: one vector of samples in flight,
// runtime loop over hidden units (the PR-3 AVX2 kernel, now widened to
// any traits). Input dims other than 1/2 run the scalar kernel.
template <class V>
void GenericBatch(int in, int hidden, const double* w1, const double* b1,
                  const double* w2, double b2, const double* xs, size_t n,
                  double* out) {
  constexpr size_t W = V::kWidth;
  const size_t groups = (in == 1 || in == 2) ? n / W : 0;
  if (in == 2) {
    for (size_t g = 0; g < groups; ++g) {
      typename V::Vec xv, yv;
      V::LoadPoints2(xs + 2 * W * g, &xv, &yv);
      typename V::Vec acc = V::Set1(b2);
      for (int j = 0; j < hidden; ++j) {
        typename V::Vec a = V::Set1(b1[j]);
        a = V::Fmadd(V::Set1(w1[2 * j]), xv, a);
        a = V::Fmadd(V::Set1(w1[2 * j + 1]), yv, a);
        acc = V::Fmadd(V::Set1(w2[j]), FastSigmoidVec<V>(a), acc);
      }
      V::StorePoints2(out + W * g, acc);
    }
  } else if (in == 1) {
    for (size_t g = 0; g < groups; ++g) {
      const typename V::Vec xv = V::Load(xs + W * g);
      typename V::Vec acc = V::Set1(b2);
      for (int j = 0; j < hidden; ++j) {
        const typename V::Vec a =
            V::Fmadd(V::Set1(w1[j]), xv, V::Set1(b1[j]));
        acc = V::Fmadd(V::Set1(w2[j]), FastSigmoidVec<V>(a), acc);
      }
      V::Store(out + W * g, acc);
    }
  }
  // Tail (and any input_dim this schedule does not handle): the scalar
  // kernel is bit-identical, so finishing scalar changes nothing.
  nn_math::PredictBatchImpl(in, hidden, w1, b1, w2, b2,
                            xs + groups * W * in, n - groups * W,
                            out + groups * W);
}

// One tile of the specialized schedule: exactly kWidth * kBlocks
// samples, compile-time shape, fully unrolled. Multiple blocks keep
// several vectors in flight per weight pass, so each w1/b1/w2
// broadcast is amortized across kBlocks vectors and the long-latency
// divisions of independent blocks pipeline in the divider.
template <class V, int kIn, int kHidden, int kBlocks>
RSMI_ALWAYS_INLINE void SpecTile(const double* w1, const double* b1,
                                 const double* w2, double b2,
                                 const double* xs, double* out) {
  static_assert(kIn == 1 || kIn == 2, "specialized shapes have in = 1 or 2");
  constexpr size_t W = V::kWidth;
  typename V::Vec xv[kBlocks], yv[kBlocks], acc[kBlocks];
  RSMI_UNROLL_FULL
  for (int t = 0; t < kBlocks; ++t) {
    const double* base = xs + kIn * W * static_cast<size_t>(t);
    if constexpr (kIn == 2) {
      V::LoadPoints2(base, &xv[t], &yv[t]);
    } else {
      xv[t] = V::Load(base);
      yv[t] = xv[t];  // unused; keeps the array fully initialized
    }
    acc[t] = V::Set1(b2);
  }
  RSMI_UNROLL_FULL
  for (int j = 0; j < kHidden; ++j) {
    const typename V::Vec w1x = V::Set1(w1[kIn * j]);
    const typename V::Vec b1j = V::Set1(b1[j]);
    const typename V::Vec w2j = V::Set1(w2[j]);
    RSMI_UNROLL_FULL
    for (int t = 0; t < kBlocks; ++t) {
      typename V::Vec a = V::Fmadd(w1x, xv[t], b1j);
      if constexpr (kIn == 2) {
        a = V::Fmadd(V::Set1(w1[2 * j + 1]), yv[t], a);
      }
      acc[t] = V::Fmadd(w2j, FastSigmoidSpec<V>(a), acc[t]);
    }
  }
  RSMI_UNROLL_FULL
  for (int t = 0; t < kBlocks; ++t) {
    double* o = out + W * static_cast<size_t>(t);
    if constexpr (kIn == 2) {
      V::StorePoints2(o, acc[t]);
    } else {
      V::Store(o, acc[t]);
    }
  }
}

// Shape-specialized schedule: compile-time (kIn, kHidden), two-block
// main loop, one-block cleanup, scalar tail. Signature matches BatchFn;
// the runtime dims are ignored (the caller binds the instantiation that
// matches the engine's shape).
template <class V, int kIn, int kHidden>
void SpecBatch(int /*in*/, int /*hidden*/, const double* w1, const double* b1,
               const double* w2, double b2, const double* xs, size_t n,
               double* out) {
  constexpr size_t W = V::kWidth;
  // Small shapes are latency-bound (few sigmoid chains per pass), so
  // they carry twice the blocks to keep the divider and FMA pipes fed;
  // large shapes already expose enough ILP across hidden units.
  constexpr int kB = kHidden <= 16 ? 2 * V::kBlocks : V::kBlocks;
  size_t s = 0;
  for (; s + kB * W <= n; s += kB * W) {
    SpecTile<V, kIn, kHidden, kB>(w1, b1, w2, b2, xs + kIn * s, out + s);
  }
  for (; s + W <= n; s += W) {
    SpecTile<V, kIn, kHidden, 1>(w1, b1, w2, b2, xs + kIn * s, out + s);
  }
  nn_math::PredictBatchImpl(kIn, kHidden, w1, b1, w2, b2, xs + kIn * s,
                            n - s, out + s);
}

}  // namespace kernels
}  // namespace rsmi

#endif  // RSMI_NN_KERNELS_SIMD_BODY_H_
