#include "nn/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <new>

#include "common/env.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RSMI_X86_DISPATCH 1
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define RSMI_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define RSMI_ALWAYS_INLINE inline
#endif

namespace rsmi {
namespace {

// ---------------------------------------------------------------------------
// Shared exp/sigmoid math.
//
// Both kernels (scalar and AVX2) execute this exact IEEE-754 operation
// sequence — same FMA contractions, same rounding, same division — so
// every dispatch path produces bit-identical results. std::exp cannot be
// used here: libm implementations differ across platforms and cannot be
// mirrored lane-for-lane in SIMD, which would break the build-time /
// query-time reproducibility the learned index depends on. The rational
// approximation below is the classic Cephes expm-style kernel (~1 ulp
// over the clamped range).
// ---------------------------------------------------------------------------

constexpr double kExpClamp = 708.0;  // keeps 2^n finite and normal
constexpr double kLog2E = 1.44269504088896340736;
constexpr double kLn2Hi = 6.93145751953125e-1;
constexpr double kLn2Lo = 1.42860682030941723212e-6;
constexpr double kExpP0 = 1.26177193074810590878e-4;
constexpr double kExpP1 = 3.02994407707441961300e-2;
constexpr double kExpP2 = 9.99999999999999999910e-1;
constexpr double kExpQ0 = 3.00198505138664455042e-6;
constexpr double kExpQ1 = 2.52448340349684104192e-3;
constexpr double kExpQ2 = 2.27265548208155028766e-1;
constexpr double kExpQ3 = 2.00000000000000000005e0;

RSMI_ALWAYS_INLINE double FastExp(double x) {
  x = std::min(kExpClamp, std::max(-kExpClamp, x));
  const double n = std::floor(std::fma(x, kLog2E, 0.5));
  double r = std::fma(n, -kLn2Hi, x);
  r = std::fma(n, -kLn2Lo, r);
  const double rr = r * r;
  const double p = r * std::fma(rr, std::fma(rr, kExpP0, kExpP1), kExpP2);
  const double q =
      std::fma(rr, std::fma(rr, std::fma(rr, kExpQ0, kExpQ1), kExpQ2), kExpQ3);
  const double e = std::fma(2.0, p / (q - p), 1.0);
  // 2^n via exponent bits; n is in [-1021, 1022] after the clamp.
  const uint64_t bits = static_cast<uint64_t>(static_cast<int64_t>(n) + 1023)
                        << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return e * scale;
}

RSMI_ALWAYS_INLINE double FastSigmoid(double a) {
  return 1.0 / (1.0 + FastExp(-a));
}

// ---------------------------------------------------------------------------
// Scalar kernel. The body is always_inline so the FMA-enabled wrapper
// below compiles it with hardware vfmadd while the portable wrapper
// falls back to libm fma — numerically identical either way (fma is
// fused by definition), only the speed differs.
// ---------------------------------------------------------------------------

RSMI_ALWAYS_INLINE double PredictOneImpl(int in, int hidden, const double* w1,
                                         const double* b1, const double* w2,
                                         double b2, const double* f) {
  double acc = b2;
  for (int j = 0; j < hidden; ++j) {
    double a = b1[j];
    const double* wrow = w1 + static_cast<size_t>(j) * in;
    for (int i = 0; i < in; ++i) a = std::fma(wrow[i], f[i], a);
    acc = std::fma(w2[j], FastSigmoid(a), acc);
  }
  return acc;
}

RSMI_ALWAYS_INLINE void PredictBatchImpl(int in, int hidden, const double* w1,
                                         const double* b1, const double* w2,
                                         double b2, const double* xs, size_t n,
                                         double* out) {
  for (size_t s = 0; s < n; ++s) {
    out[s] = PredictOneImpl(in, hidden, w1, b1, w2, b2, xs + s * in);
  }
}

double PredictOneScalar(int in, int hidden, const double* w1, const double* b1,
                        const double* w2, double b2, const double* f) {
  return PredictOneImpl(in, hidden, w1, b1, w2, b2, f);
}

void PredictBatchScalar(int in, int hidden, const double* w1, const double* b1,
                        const double* w2, double b2, const double* xs,
                        size_t n, double* out) {
  PredictBatchImpl(in, hidden, w1, b1, w2, b2, xs, n, out);
}

#if defined(RSMI_X86_DISPATCH)

__attribute__((target("fma"))) double PredictOneScalarFma(
    int in, int hidden, const double* w1, const double* b1, const double* w2,
    double b2, const double* f) {
  return PredictOneImpl(in, hidden, w1, b1, w2, b2, f);
}

__attribute__((target("fma"))) void PredictBatchScalarFma(
    int in, int hidden, const double* w1, const double* b1, const double* w2,
    double b2, const double* xs, size_t n, double* out) {
  PredictBatchImpl(in, hidden, w1, b1, w2, b2, xs, n, out);
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernel: 4 samples per vector, vectorized across the batch
// dimension so each lane runs the scalar kernel's exact op sequence.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"), always_inline)) inline __m256d
FastExpVec(__m256d x) {
  const __m256d clamp_hi = _mm256_set1_pd(kExpClamp);
  const __m256d clamp_lo = _mm256_set1_pd(-kExpClamp);
  x = _mm256_min_pd(clamp_hi, _mm256_max_pd(clamp_lo, x));
  const __m256d n = _mm256_floor_pd(
      _mm256_fmadd_pd(x, _mm256_set1_pd(kLog2E), _mm256_set1_pd(0.5)));
  __m256d r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Hi), x);
  r = _mm256_fmadd_pd(n, _mm256_set1_pd(-kLn2Lo), r);
  const __m256d rr = _mm256_mul_pd(r, r);
  const __m256d p = _mm256_mul_pd(
      r, _mm256_fmadd_pd(
             rr,
             _mm256_fmadd_pd(rr, _mm256_set1_pd(kExpP0),
                             _mm256_set1_pd(kExpP1)),
             _mm256_set1_pd(kExpP2)));
  const __m256d q = _mm256_fmadd_pd(
      rr,
      _mm256_fmadd_pd(
          rr,
          _mm256_fmadd_pd(rr, _mm256_set1_pd(kExpQ0), _mm256_set1_pd(kExpQ1)),
          _mm256_set1_pd(kExpQ2)),
      _mm256_set1_pd(kExpQ3));
  const __m256d e = _mm256_fmadd_pd(
      _mm256_set1_pd(2.0), _mm256_div_pd(p, _mm256_sub_pd(q, p)),
      _mm256_set1_pd(1.0));
  // 2^n via exponent bits, mirroring the scalar path. n is integral and
  // within int32 range, so the (round-to-nearest) cvt is exact.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
}

__attribute__((target("avx2,fma"), always_inline)) inline __m256d
FastSigmoidVec(__m256d a) {
  const __m256d neg = _mm256_xor_pd(a, _mm256_set1_pd(-0.0));
  return _mm256_div_pd(
      _mm256_set1_pd(1.0),
      _mm256_add_pd(_mm256_set1_pd(1.0), FastExpVec(neg)));
}

__attribute__((target("avx2,fma"))) void PredictBatchAvx2(
    int in, int hidden, const double* w1, const double* b1, const double* w2,
    double b2, const double* xs, size_t n, double* out) {
  const size_t groups = (in == 1 || in == 2) ? n / 4 : 0;
  if (in == 2) {
    for (size_t g = 0; g < groups; ++g) {
      const double* base = xs + 8 * g;
      const __m256d v0 = _mm256_loadu_pd(base);      // x0 y0 x1 y1
      const __m256d v1 = _mm256_loadu_pd(base + 4);  // x2 y2 x3 y3
      const __m256d xv = _mm256_unpacklo_pd(v0, v1);  // x0 x2 x1 x3
      const __m256d yv = _mm256_unpackhi_pd(v0, v1);  // y0 y2 y1 y3
      __m256d acc = _mm256_set1_pd(b2);
      for (int j = 0; j < hidden; ++j) {
        __m256d a = _mm256_set1_pd(b1[j]);
        a = _mm256_fmadd_pd(_mm256_set1_pd(w1[2 * j]), xv, a);
        a = _mm256_fmadd_pd(_mm256_set1_pd(w1[2 * j + 1]), yv, a);
        acc = _mm256_fmadd_pd(_mm256_set1_pd(w2[j]), FastSigmoidVec(a), acc);
      }
      // Undo the unpack permutation (lanes are o0 o2 o1 o3).
      _mm256_storeu_pd(out + 4 * g,
                       _mm256_permute4x64_pd(acc, _MM_SHUFFLE(3, 1, 2, 0)));
    }
  } else if (in == 1) {
    for (size_t g = 0; g < groups; ++g) {
      const __m256d xv = _mm256_loadu_pd(xs + 4 * g);
      __m256d acc = _mm256_set1_pd(b2);
      for (int j = 0; j < hidden; ++j) {
        const __m256d a =
            _mm256_fmadd_pd(_mm256_set1_pd(w1[j]), xv, _mm256_set1_pd(b1[j]));
        acc = _mm256_fmadd_pd(_mm256_set1_pd(w2[j]), FastSigmoidVec(a), acc);
      }
      _mm256_storeu_pd(out + 4 * g, acc);
    }
  }
  // Tail (and any input_dim this kernel does not specialize): the scalar
  // kernel is bit-identical, so finishing scalar changes nothing.
  PredictBatchScalarFma(in, hidden, w1, b1, w2, b2, xs + groups * 4 * in,
                        n - groups * 4, out + groups * 4);
}

#endif  // RSMI_X86_DISPATCH

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

using BatchFn = void (*)(int, int, const double*, const double*, const double*,
                         double, const double*, size_t, double*);
using OneFn = double (*)(int, int, const double*, const double*, const double*,
                         double, const double*);

struct Dispatch {
  InferenceKernel kind = InferenceKernel::kScalar;
  BatchFn batch = &PredictBatchScalar;
  OneFn one = &PredictOneScalar;
};

bool CpuHasAvx2Fma() {
#if defined(RSMI_X86_DISPATCH)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Dispatch& ActiveDispatch() {
  static const Dispatch d = [] {
    Dispatch out;
#if defined(RSMI_X86_DISPATCH)
    // Hardware-FMA scalar wrappers: bit-identical to the portable
    // kernel (fma is fused either way), only faster — so even the
    // RSMI_FORCE_SCALAR escape hatch keeps them. The env var pins the
    // *scalar* kernel (no vector unit on the inference path); it does
    // not change the arithmetic.
    if (__builtin_cpu_supports("fma")) {
      out.batch = &PredictBatchScalarFma;
      out.one = &PredictOneScalarFma;
    }
    if (GetEnvInt64("RSMI_FORCE_SCALAR", 0) != 0) return out;
    if (CpuHasAvx2Fma()) {
      out.kind = InferenceKernel::kAvx2;
      out.batch = &PredictBatchAvx2;
      out.one = &PredictOneScalarFma;  // bit-identical to any AVX2 lane
    }
#endif
    return out;
  }();
  return d;
}

}  // namespace

std::string InferenceKernelName(InferenceKernel k) {
  switch (k) {
    case InferenceKernel::kScalar:
      return "scalar";
    case InferenceKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

InferenceKernel ActiveInferenceKernel() { return ActiveDispatch().kind; }

bool InferenceKernelAvailable(InferenceKernel k) {
  switch (k) {
    case InferenceKernel::kScalar:
      return true;
    case InferenceKernel::kAvx2:
      return CpuHasAvx2Fma();
  }
  return false;
}

void InferenceEngine::AlignedDeleter::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t(64));
}

InferenceEngine::InferenceEngine(int input_dim, int hidden_dim,
                                 const double* w1, const double* b1,
                                 const double* w2, double b2)
    : in_(input_dim), hidden_(hidden_dim) {
  const size_t h = static_cast<size_t>(hidden_dim);
  len_ = h * input_dim + h + h + 1;
  data_.reset(static_cast<double*>(
      ::operator new[](len_ * sizeof(double), std::align_val_t(64))));
  double* p = data_.get();
  std::memcpy(p, w1, h * input_dim * sizeof(double));
  std::memcpy(p + h * input_dim, b1, h * sizeof(double));
  std::memcpy(p + h * input_dim + h, w2, h * sizeof(double));
  p[h * input_dim + 2 * h] = b2;
}

void InferenceEngine::CopyFrom(const InferenceEngine& other) {
  in_ = other.in_;
  hidden_ = other.hidden_;
  len_ = other.len_;
  data_.reset(static_cast<double*>(
      ::operator new[](len_ * sizeof(double), std::align_val_t(64))));
  std::memcpy(data_.get(), other.data_.get(), len_ * sizeof(double));
}

InferenceEngine::InferenceEngine(const InferenceEngine& other)
    : in_(other.in_), hidden_(other.hidden_) {
  CopyFrom(other);
}

InferenceEngine& InferenceEngine::operator=(const InferenceEngine& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

void InferenceEngine::PredictBatch(const double* xs, size_t n,
                                   double* out) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  ActiveDispatch().batch(in_, hidden_, p, p + h * in_, p + h * in_ + h,
                         p[h * in_ + 2 * h], xs, n, out);
}

void InferenceEngine::PredictBatchWithKernel(InferenceKernel k,
                                             const double* xs, size_t n,
                                             double* out) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  const double* b1 = p + h * in_;
  const double* w2 = b1 + h;
  const double b2 = p[h * in_ + 2 * h];
#if defined(RSMI_X86_DISPATCH)
  if (k == InferenceKernel::kAvx2 && CpuHasAvx2Fma()) {
    PredictBatchAvx2(in_, hidden_, p, b1, w2, b2, xs, n, out);
    return;
  }
#endif
  (void)k;
  PredictBatchScalar(in_, hidden_, p, b1, w2, b2, xs, n, out);
}

double InferenceEngine::Predict(const double* features) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  return ActiveDispatch().one(in_, hidden_, p, p + h * in_, p + h * in_ + h,
                              p[h * in_ + 2 * h], features);
}

}  // namespace rsmi
