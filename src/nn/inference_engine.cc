#include "nn/inference_engine.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <new>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "nn/kernel_math.h"
#include "nn/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RSMI_X86_DISPATCH 1
#endif

namespace rsmi {
namespace {

using kernels::BatchFn;
using OneFn = double (*)(int, int, const double*, const double*, const double*,
                         double, const double*);

// ---------------------------------------------------------------------------
// Scalar kernel. The body (nn/kernel_math.h) is always_inline so the
// FMA-enabled wrapper below compiles it with hardware vfmadd while the
// portable wrapper falls back to libm fma — numerically identical either
// way (fma is fused by definition), only the speed differs.
// ---------------------------------------------------------------------------

double PredictOneScalar(int in, int hidden, const double* w1, const double* b1,
                        const double* w2, double b2, const double* f) {
  return nn_math::PredictOneImpl(in, hidden, w1, b1, w2, b2, f);
}

void PredictBatchScalar(int in, int hidden, const double* w1, const double* b1,
                        const double* w2, double b2, const double* xs,
                        size_t n, double* out) {
  nn_math::PredictBatchImpl(in, hidden, w1, b1, w2, b2, xs, n, out);
}

#if defined(RSMI_X86_DISPATCH)

__attribute__((target("fma"))) double PredictOneScalarFma(
    int in, int hidden, const double* w1, const double* b1, const double* w2,
    double b2, const double* f) {
  return nn_math::PredictOneImpl(in, hidden, w1, b1, w2, b2, f);
}

__attribute__((target("fma"))) void PredictBatchScalarFma(
    int in, int hidden, const double* w1, const double* b1, const double* w2,
    double b2, const double* xs, size_t n, double* out) {
  nn_math::PredictBatchImpl(in, hidden, w1, b1, w2, b2, xs, n, out);
}

#endif  // RSMI_X86_DISPATCH

// ---------------------------------------------------------------------------
// Runtime dispatch policy (process-wide, decided once at first use).
// The SIMD kernels themselves live in kernels_avx2.cc / kernels_avx512.cc
// — per-ISA translation units looked up through nn/kernels.h.
// ---------------------------------------------------------------------------

bool CpuHasAvx2Fma() {
#if defined(RSMI_X86_DISPATCH)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(RSMI_X86_DISPATCH)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool Avx2Usable() { return CpuHasAvx2Fma() && kernels::GenericAvx2() != nullptr; }
bool Avx512Usable() {
  return CpuHasAvx512() && kernels::GenericAvx512() != nullptr;
}

enum class ForcedKernel { kNone, kScalar, kAvx2, kAvx512, kSpecialized };

ForcedKernel ForcedKernelFromEnv() {
  std::string v = GetEnvString("RSMI_FORCE_KERNEL", "");
  if (v.empty()) {
    // Back-compat escape hatch from PR 3.
    return GetEnvInt64("RSMI_FORCE_SCALAR", 0) != 0 ? ForcedKernel::kScalar
                                                    : ForcedKernel::kNone;
  }
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "scalar") return ForcedKernel::kScalar;
  if (v == "avx2") return ForcedKernel::kAvx2;
  if (v == "avx512") return ForcedKernel::kAvx512;
  if (v == "specialized") return ForcedKernel::kSpecialized;
  return ForcedKernel::kNone;  // unknown value: default policy
}

struct Dispatch {
  /// Generic kernel for shapes without a specialized instantiation.
  InferenceKernel kind = InferenceKernel::kScalar;
  BatchFn batch = &PredictBatchScalar;
  OneFn one = &PredictOneScalar;
  /// Bind specialized kernels at snapshot time where the shape matches.
  bool specialize = false;
  /// ISA hosting the specialized instantiations (widest usable).
  InferenceKernel spec_isa = InferenceKernel::kScalar;
};

const Dispatch& ActiveDispatch() {
  static const Dispatch d = [] {
    Dispatch out;
#if defined(RSMI_X86_DISPATCH)
    // Hardware-FMA scalar wrappers: bit-identical to the portable
    // kernel (fma is fused either way), only faster — so even the
    // forced-scalar escape hatch keeps them. Forcing scalar pins the
    // *scalar* kernel (no vector unit on the inference path); it does
    // not change the arithmetic.
    if (__builtin_cpu_supports("fma")) {
      out.batch = &PredictBatchScalarFma;
      out.one = &PredictOneScalarFma;
    }
#endif
    const ForcedKernel forced = ForcedKernelFromEnv();
    if (forced == ForcedKernel::kScalar) return out;
    // Widest generic kernel the request and machine allow; unavailable
    // requests fall back down the chain (avx512 -> avx2 -> scalar).
    InferenceKernel width = InferenceKernel::kScalar;
    if (Avx2Usable()) width = InferenceKernel::kAvx2;
    if (Avx512Usable() && forced != ForcedKernel::kAvx2)
      width = InferenceKernel::kAvx512;
    if (width == InferenceKernel::kAvx512) {
      out.kind = width;
      out.batch = kernels::GenericAvx512();
    } else if (width == InferenceKernel::kAvx2) {
      out.kind = width;
      out.batch = kernels::GenericAvx2();
    }
#if defined(RSMI_X86_DISPATCH)
    if (width != InferenceKernel::kScalar) {
      out.one = &PredictOneScalarFma;  // bit-identical to any SIMD lane
    }
#endif
    // Forcing a generic SIMD kernel disables shape specialization so
    // the forced path is what actually runs (the CI matrix leans on
    // this to exercise each generic kernel through the full stack).
    out.specialize = (forced == ForcedKernel::kNone ||
                      forced == ForcedKernel::kSpecialized) &&
                     width != InferenceKernel::kScalar;
    out.spec_isa = width;
    return out;
  }();
  return d;
}

}  // namespace

std::string InferenceKernelName(InferenceKernel k) {
  switch (k) {
    case InferenceKernel::kScalar:
      return "scalar";
    case InferenceKernel::kAvx2:
      return "avx2";
    case InferenceKernel::kAvx512:
      return "avx512";
    case InferenceKernel::kSpecialized:
      return "specialized";
  }
  return "?";
}

InferenceKernel ActiveInferenceKernel() { return ActiveDispatch().kind; }

std::string ActiveInferenceKernelDescription() {
  const Dispatch& d = ActiveDispatch();
  if (d.specialize) {
    return "specialized+" + InferenceKernelName(d.spec_isa);
  }
  return InferenceKernelName(d.kind);
}

bool InferenceKernelAvailable(InferenceKernel k) {
  switch (k) {
    case InferenceKernel::kScalar:
      return true;
    case InferenceKernel::kAvx2:
      return Avx2Usable();
    case InferenceKernel::kAvx512:
      return Avx512Usable();
    case InferenceKernel::kSpecialized:
      return Avx2Usable() || Avx512Usable();
  }
  return false;
}

bool HasSpecializedKernelShape(int input_dim, int hidden_dim) {
  return kernels::HasSpecializedShape(input_dim, hidden_dim);
}

namespace kernels {

bool HasSpecializedShape(int in, int hidden) {
#define RSMI_SPEC_ROW(IN, H) \
  if (in == IN && hidden == H) return true;
  RSMI_SPECIALIZED_SHAPES(RSMI_SPEC_ROW)
#undef RSMI_SPEC_ROW
  return false;
}

}  // namespace kernels

void InferenceEngine::AlignedDeleter::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t(64));
}

void InferenceEngine::BindKernel() {
  const Dispatch& d = ActiveDispatch();
  bound_kind_ = d.kind;
  spec_isa_ = InferenceKernel::kScalar;
  batch_ = d.batch;
  one_ = d.one;
  if (!d.specialize) return;
  BatchFn spec = nullptr;
  if (d.spec_isa == InferenceKernel::kAvx512) {
    spec = kernels::SpecializedAvx512(in_, hidden_);
  } else if (d.spec_isa == InferenceKernel::kAvx2) {
    spec = kernels::SpecializedAvx2(in_, hidden_);
  }
  if (spec != nullptr) {
    bound_kind_ = InferenceKernel::kSpecialized;
    spec_isa_ = d.spec_isa;
    batch_ = spec;
  }
}

std::string InferenceEngine::bound_kernel_name() const {
  if (bound_kind_ == InferenceKernel::kSpecialized) {
    return "specialized(" + InferenceKernelName(spec_isa_) + ")";
  }
  return InferenceKernelName(bound_kind_);
}

InferenceEngine::InferenceEngine(int input_dim, int hidden_dim,
                                 const double* w1, const double* b1,
                                 const double* w2, double b2)
    : in_(input_dim), hidden_(hidden_dim) {
  const size_t h = static_cast<size_t>(hidden_dim);
  len_ = h * input_dim + h + h + 1;
  data_.reset(static_cast<double*>(
      ::operator new[](len_ * sizeof(double), std::align_val_t(64))));
  double* p = data_.get();
  std::memcpy(p, w1, h * input_dim * sizeof(double));
  std::memcpy(p + h * input_dim, b1, h * sizeof(double));
  std::memcpy(p + h * input_dim + h, w2, h * sizeof(double));
  p[h * input_dim + 2 * h] = b2;
  BindKernel();
}

void InferenceEngine::CopyFrom(const InferenceEngine& other) {
  in_ = other.in_;
  hidden_ = other.hidden_;
  len_ = other.len_;
  data_.reset(static_cast<double*>(
      ::operator new[](len_ * sizeof(double), std::align_val_t(64))));
  std::memcpy(data_.get(), other.data_.get(), len_ * sizeof(double));
  BindKernel();  // same shape + same process policy => same binding
}

InferenceEngine::InferenceEngine(const InferenceEngine& other)
    : in_(other.in_), hidden_(other.hidden_) {
  CopyFrom(other);
}

InferenceEngine& InferenceEngine::operator=(const InferenceEngine& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

void InferenceEngine::PredictBatch(const double* xs, size_t n,
                                   double* out) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  batch_(in_, hidden_, p, p + h * in_, p + h * in_ + h, p[h * in_ + 2 * h],
         xs, n, out);
}

void InferenceEngine::PredictBatchWithKernel(InferenceKernel k,
                                             const double* xs, size_t n,
                                             double* out) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  const double* b1 = p + h * in_;
  const double* w2 = b1 + h;
  const double b2 = p[h * in_ + 2 * h];
  BatchFn fn = nullptr;
  switch (k) {
    case InferenceKernel::kScalar:
      break;
    case InferenceKernel::kAvx2:
      if (Avx2Usable()) fn = kernels::GenericAvx2();
      break;
    case InferenceKernel::kAvx512:
      if (Avx512Usable()) fn = kernels::GenericAvx512();
      break;
    case InferenceKernel::kSpecialized:
      if (Avx512Usable()) fn = kernels::SpecializedAvx512(in_, hidden_);
      if (fn == nullptr && Avx2Usable())
        fn = kernels::SpecializedAvx2(in_, hidden_);
      break;
  }
  if (fn == nullptr) fn = &PredictBatchScalar;
  fn(in_, hidden_, p, b1, w2, b2, xs, n, out);
}

double InferenceEngine::Predict(const double* features) const {
  const size_t h = static_cast<size_t>(hidden_);
  const double* p = data_.get();
  return one_(in_, hidden_, p, p + h * in_, p + h * in_ + h,
              p[h * in_ + 2 * h], features);
}

// ---------------------------------------------------------------------------
// Batch-chunk width autotuner for the fused descents.
// ---------------------------------------------------------------------------

namespace {

size_t AutotuneChunkWidth() {
  // Representative hot shape: the RSMI leaf model (in=2, hidden=51).
  constexpr int kIn = 2;
  constexpr int kHidden = 51;
  std::vector<double> w1(static_cast<size_t>(kHidden) * kIn);
  std::vector<double> b1(kHidden), w2(kHidden);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    // xorshift64*: deterministic pseudo-weights in [-1, 1).
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const uint64_t z = state * 0x2545f4914f6cdd1dull;
    return static_cast<double>(z >> 11) * (2.0 / 9007199254740992.0) - 1.0;
  };
  for (double& w : w1) w = next();
  for (double& b : b1) b = next();
  for (double& w : w2) w = next();
  const InferenceEngine engine(kIn, kHidden, w1.data(), b1.data(), w2.data(),
                               next());

  constexpr size_t kSamples = 4096;
  std::vector<double> xs(kSamples * kIn);
  for (double& x : xs) x = next();
  std::vector<double> out(kSamples);

  constexpr size_t kCandidates[] = {128, 256, 512, 1024};
  size_t best = kCandidates[1];
  double best_us = std::numeric_limits<double>::infinity();
  for (const size_t cand : kCandidates) {
    double us = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      for (size_t s = 0; s < kSamples; s += cand) {
        const size_t m = std::min(cand, kSamples - s);
        engine.PredictBatch(xs.data() + s * kIn, m, out.data() + s);
      }
      us = std::min(us, timer.ElapsedMicros());
    }
    if (us < best_us) {
      best_us = us;
      best = cand;
    }
  }
  return best;
}

}  // namespace

size_t BatchDescentChunkWidth() {
  static const size_t width = [] {
    const int64_t forced = GetEnvInt64("RSMI_BATCH_CHUNK", 0);
    if (forced > 0) {
      return static_cast<size_t>(
          std::min<int64_t>(std::max<int64_t>(forced, 16), 1 << 20));
    }
    return AutotuneChunkWidth();
  }();
  return width;
}

}  // namespace rsmi
