#ifndef RSMI_NN_MLP_H_
#define RSMI_NN_MLP_H_

#include <cstdint>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace rsmi {

class InferenceEngine;
class Serializer;    // io/serializer.h
class Deserializer;  // io/serializer.h

/// Training knobs for Mlp::Train.
///
/// The paper trains every sub-model with plain SGD, learning rate 0.01 and
/// 500 epochs on PyTorch (Section 6.1). This reproduction defaults to
/// mini-batch Adam with an epoch budget and an optional cap on the number
/// of training samples, which reaches the same loss in a fraction of the
/// wall time on CPU (documented as substitution #3 in DESIGN.md). Setting
/// `use_adam=false, batch_size=0, epochs=500` reproduces the paper's
/// procedure exactly.
struct MlpTrainConfig {
  double learning_rate = 0.003;
  /// Final learning rate of the cosine decay schedule (set equal to
  /// `learning_rate` for a constant rate, as in the paper's setup).
  double final_learning_rate = 0.0001;
  int epochs = 300;
  /// Mini-batch size; 0 means full-batch gradient descent.
  int batch_size = 128;
  /// Adam (default) vs plain SGD.
  bool use_adam = true;
  /// If > 0 and the training set is larger, train on a deterministic
  /// subsample of this many points (used for RSMI internal models).
  int max_samples = 0;
  /// Stop when the epoch loss improves by less than `early_stop_tol`
  /// (relative) for `early_stop_patience` consecutive epochs. 0 disables.
  double early_stop_tol = 1e-4;
  int early_stop_patience = 15;
  uint64_t seed = 42;
};

/// Member-wise copy over zeroed storage: same values, but the struct's
/// padding holes hold 0 instead of whatever was on the stack when the
/// config was assembled. Persistence code WritePods configs raw (bytes,
/// padding included), and the on-disk image must be a pure function of
/// the index state — identical indexes must produce identical files and
/// CRCs.
inline MlpTrainConfig PaddingZeroed(const MlpTrainConfig& c) {
  MlpTrainConfig out;
  std::memset(static_cast<void*>(&out), 0, sizeof(out));
  out.learning_rate = c.learning_rate;
  out.final_learning_rate = c.final_learning_rate;
  out.epochs = c.epochs;
  out.batch_size = c.batch_size;
  out.use_adam = c.use_adam;
  out.max_samples = c.max_samples;
  out.early_stop_tol = c.early_stop_tol;
  out.early_stop_patience = c.early_stop_patience;
  out.seed = c.seed;
  return out;
}

/// A multilayer perceptron with one sigmoid hidden layer and a linear
/// output neuron — the sub-model architecture used by both RSMI and the
/// ZM baseline (Section 6.1: "an input layer, a hidden layer, and an
/// output layer", sigmoid activation).
///
/// Inputs are expected in [0,1]^d and targets in [0,1]; callers normalize.
class Mlp {
 public:
  /// `input_dim` is 2 for RSMI sub-models (x, y coordinates) and 1 for ZM
  /// sub-models (Z-value). `hidden_dim` follows the paper's rule:
  /// (#inputs + #output classes) / 2.
  ///
  /// `init_scale` sets the uniform init range of the first-layer weights
  /// and biases; 0 selects Xavier/Glorot. Targets like the rank-space
  /// curve order are high-frequency in the inputs, and a Xavier-initialized
  /// sigmoid layer starts out near-linear over [-1,1] inputs, which Adam
  /// cannot escape within a practical epoch budget. A large init range
  /// spreads the sigmoid transition ridges across the input square up
  /// front and roughly halves the leaf prediction error (see the
  /// bench_ablation_training ablation).
  Mlp(int input_dim, int hidden_dim, uint64_t seed = 42,
      double init_scale = 0.0);
  ~Mlp();
  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) noexcept;
  Mlp& operator=(Mlp&&) noexcept;

  /// Trains on `n` samples, where `x` holds n*input_dim row-major features
  /// and `y` holds n targets. Minimizes the L2 loss (Eq. 3). Returns the
  /// final mean-squared-error loss.
  double Train(const std::vector<double>& x, const std::vector<double>& y,
               const MlpTrainConfig& cfg);

  /// Forward pass on one sample (`features` has input_dim entries).
  /// Delegates to the inference engine's scalar kernel, so the result is
  /// bit-identical to the corresponding PredictBatch lane on every
  /// dispatch path (see nn/inference_engine.h).
  double Predict(const double* features) const;

  /// Batched forward pass on `n` samples (`xs` holds n*input_dim
  /// row-major features, `out` receives n predictions) through the
  /// vectorized inference engine. Bit-identical to calling Predict once
  /// per sample — only faster.
  void PredictBatch(const double* xs, size_t n, double* out) const;

  /// Convenience forward pass for 1-d inputs (ZM).
  double Predict1(double a) const {
    return Predict(&a);
  }

  /// Convenience forward pass for 2-d inputs (RSMI).
  double Predict2(double a, double b) const {
    const double f[2] = {a, b};
    return Predict(f);
  }

  int input_dim() const { return in_; }
  int hidden_dim() const { return hidden_; }

  /// Number of trainable parameters.
  size_t ParameterCount() const {
    return static_cast<size_t>(hidden_) * in_ + hidden_ + hidden_ + 1;
  }

  /// In-memory footprint of the model (used for index-size metrics):
  /// the parameter vectors plus the inference engine's aligned snapshot
  /// of them (each trained model keeps both — the vectors for training
  /// and persistence, the flat snapshot for serving). Exact: the engine
  /// reports its actual snapshot length, including alignment padding.
  size_t SizeBytes() const;

  /// Binary persistence (index save/load, io/serializer.h).
  void WriteTo(Serializer& out) const;
  static bool ReadFrom(Deserializer& in, Mlp* out);

 private:
  /// (Re)builds the inference engine's flat weight snapshot; called
  /// whenever the weights change (construction, training, load).
  void RebuildEngine();

  int in_;
  int hidden_;
  std::vector<double> w1_;  // hidden_ x in_
  std::vector<double> b1_;  // hidden_
  std::vector<double> w2_;  // hidden_
  double b2_ = 0.0;
  /// Flat, cache-aligned weight snapshot serving Predict/PredictBatch
  /// (never null after construction).
  std::unique_ptr<InferenceEngine> engine_;
};

}  // namespace rsmi

#endif  // RSMI_NN_MLP_H_
