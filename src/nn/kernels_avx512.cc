// AVX-512 kernel schedules (8 doubles per vector). This translation
// unit is compiled with -mavx512f -mavx512dq (per-source flags in
// src/CMakeLists.txt) on x86 builds; callers must gate on the runtime
// cpuid check in inference_engine.cc before invoking anything returned
// from here. _mm512_xor_pd needs AVX512DQ, hence the dual requirement.

#include "nn/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

#include "nn/kernels_simd_body.h"

namespace rsmi {
namespace kernels {
namespace {

struct V8 {
  using Vec = __m512d;
  static constexpr int kBlocks = 4;
  static constexpr size_t kWidth = 8;
  static RSMI_ALWAYS_INLINE Vec Load(const double* p) {
    return _mm512_loadu_pd(p);
  }
  static RSMI_ALWAYS_INLINE void Store(double* p, Vec v) {
    _mm512_storeu_pd(p, v);
  }
  static RSMI_ALWAYS_INLINE Vec Set1(double x) { return _mm512_set1_pd(x); }
  static RSMI_ALWAYS_INLINE Vec Min(Vec a, Vec b) {
    return _mm512_min_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Max(Vec a, Vec b) {
    return _mm512_max_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Floor(Vec a) {
    return _mm512_roundscale_pd(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  }
  static RSMI_ALWAYS_INLINE Vec Fmadd(Vec a, Vec b, Vec c) {
    return _mm512_fmadd_pd(a, b, c);
  }
  static RSMI_ALWAYS_INLINE Vec Fmsub(Vec a, Vec b, Vec c) {
    return _mm512_fmsub_pd(a, b, c);
  }
  static RSMI_ALWAYS_INLINE Vec Mul(Vec a, Vec b) {
    return _mm512_mul_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Add(Vec a, Vec b) {
    return _mm512_add_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Sub(Vec a, Vec b) {
    return _mm512_sub_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Div(Vec a, Vec b) {
    return _mm512_div_pd(a, b);
  }
  static RSMI_ALWAYS_INLINE Vec Neg(Vec a) {
    return _mm512_xor_pd(a, _mm512_set1_pd(-0.0));
  }
  // 2^n via exponent bits, mirroring the scalar path. n is integral and
  // within int32 range, so the (round-to-nearest) cvt is exact.
  static RSMI_ALWAYS_INLINE Vec Exp2FromN(Vec n) {
    const __m256i n32 = _mm512_cvtpd_epi32(n);
    const __m512i n64 = _mm512_cvtepi32_epi64(n32);
    const __m512i bits =
        _mm512_slli_epi64(_mm512_add_epi64(n64, _mm512_set1_epi64(1023)), 52);
    return _mm512_castsi512_pd(bits);
  }
  // One vscalefpd replaces the cvt/add/shift/mul exponent-bits chain:
  // e * 2^n with n integral and the product normal is exact, so both
  // formulations produce the identical double.
  static RSMI_ALWAYS_INLINE Vec ScaleByExp2(Vec e, Vec n) {
    return _mm512_scalef_pd(e, n);
  }
  // vpermt2pd deinterleaves into natural lane order, so no store-side
  // fixup is needed (unlike the AVX2 unpack trick).
  static RSMI_ALWAYS_INLINE void LoadPoints2(const double* p, Vec* xv,
                                             Vec* yv) {
    const Vec v0 = _mm512_loadu_pd(p);      // x0 y0 .. x3 y3
    const Vec v1 = _mm512_loadu_pd(p + 8);  // x4 y4 .. x7 y7
    const __m512i idx_x = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i idx_y = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    *xv = _mm512_permutex2var_pd(v0, idx_x, v1);  // x0 .. x7
    *yv = _mm512_permutex2var_pd(v0, idx_y, v1);  // y0 .. y7
  }
  static RSMI_ALWAYS_INLINE void StorePoints2(double* p, Vec acc) {
    _mm512_storeu_pd(p, acc);
  }
};

}  // namespace

BatchFn GenericAvx512() { return &GenericBatch<V8>; }

BatchFn SpecializedAvx512(int in, int hidden) {
#define RSMI_SPEC_ROW(IN, H) \
  if (in == IN && hidden == H) return &SpecBatch<V8, IN, H>;
  RSMI_SPECIALIZED_SHAPES(RSMI_SPEC_ROW)
#undef RSMI_SPEC_ROW
  return nullptr;
}

}  // namespace kernels
}  // namespace rsmi

#else  // ISA unavailable in this build

namespace rsmi {
namespace kernels {

BatchFn GenericAvx512() { return nullptr; }
BatchFn SpecializedAvx512(int /*in*/, int /*hidden*/) { return nullptr; }

}  // namespace kernels
}  // namespace rsmi

#endif
