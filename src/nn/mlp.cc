#include "nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "io/serializer.h"
#include "nn/inference_engine.h"

namespace rsmi {
namespace {

/// Training-loop activation. Training keeps libm's exp (the gradient
/// math has no reproducibility constraint — any close sigmoid trains the
/// same weights); *post-training* predictions all go through the
/// inference engine so build-time decisions and query-time retracing are
/// bit-identical on every dispatch path.
inline double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

Mlp::Mlp(int input_dim, int hidden_dim, uint64_t seed, double init_scale)
    : in_(input_dim),
      hidden_(hidden_dim),
      w1_(static_cast<size_t>(hidden_dim) * input_dim),
      b1_(hidden_dim, 0.0),
      w2_(hidden_dim) {
  Rng rng(seed);
  // First layer: Xavier/Glorot by default; a caller-provided range for
  // high-frequency targets (see the header comment).
  const double s1 =
      init_scale > 0.0 ? init_scale : std::sqrt(6.0 / (in_ + hidden_));
  for (double& w : w1_) w = rng.Uniform(-s1, s1);
  if (init_scale > 0.0) {
    for (double& b : b1_) b = rng.Uniform(-s1, s1);
  }
  const double s2 = std::sqrt(6.0 / (hidden_ + 1));
  for (double& w : w2_) w = rng.Uniform(-s2, s2);
  RebuildEngine();
}

Mlp::~Mlp() = default;
Mlp::Mlp(Mlp&&) noexcept = default;
Mlp& Mlp::operator=(Mlp&&) noexcept = default;

Mlp::Mlp(const Mlp& other)
    : in_(other.in_),
      hidden_(other.hidden_),
      w1_(other.w1_),
      b1_(other.b1_),
      w2_(other.w2_),
      b2_(other.b2_) {
  RebuildEngine();
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this != &other) {
    in_ = other.in_;
    hidden_ = other.hidden_;
    w1_ = other.w1_;
    b1_ = other.b1_;
    w2_ = other.w2_;
    b2_ = other.b2_;
    RebuildEngine();
  }
  return *this;
}

void Mlp::RebuildEngine() {
  engine_ = std::make_unique<InferenceEngine>(in_, hidden_, w1_.data(),
                                              b1_.data(), w2_.data(), b2_);
}

size_t Mlp::SizeBytes() const {
  return ParameterCount() * sizeof(double) + engine_->SnapshotBytes();
}

double Mlp::Predict(const double* features) const {
  return engine_->Predict(features);
}

void Mlp::PredictBatch(const double* xs, size_t n, double* out) const {
  engine_->PredictBatch(xs, n, out);
}

double Mlp::Train(const std::vector<double>& x, const std::vector<double>& y,
                  const MlpTrainConfig& cfg) {
  const size_t total = y.size();
  assert(x.size() == total * static_cast<size_t>(in_));
  if (total == 0) return 0.0;

  Rng rng(cfg.seed);

  // Optional deterministic subsample (partial Fisher-Yates).
  std::vector<size_t> idx(total);
  std::iota(idx.begin(), idx.end(), 0);
  size_t n = total;
  if (cfg.max_samples > 0 && total > static_cast<size_t>(cfg.max_samples)) {
    n = static_cast<size_t>(cfg.max_samples);
    for (size_t i = 0; i < n; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                        total - 1 - i)));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(n);
  }

  const int batch = cfg.batch_size > 0
                        ? std::min<int>(cfg.batch_size, static_cast<int>(n))
                        : static_cast<int>(n);

  // Gradient accumulators and Adam moments.
  const size_t np = ParameterCount();
  std::vector<double> grad(np, 0.0);
  std::vector<double> m(cfg.use_adam ? np : 0, 0.0);
  std::vector<double> v(cfg.use_adam ? np : 0, 0.0);
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  int64_t adam_t = 0;

  std::vector<double> hidden_act(hidden_);
  double last_loss = 0.0;
  double best_loss = std::numeric_limits<double>::infinity();
  int stall = 0;

  // Parameter layout inside grad/m/v: [w1 | b1 | w2 | b2].
  const size_t off_b1 = static_cast<size_t>(hidden_) * in_;
  const size_t off_w2 = off_b1 + hidden_;
  const size_t off_b2 = off_w2 + hidden_;

  const double lr_hi = cfg.learning_rate;
  const double lr_lo = std::min(cfg.final_learning_rate, lr_hi);
  double lr = lr_hi;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Cosine decay: start aggressive, finish with fine steps so the fit
    // tightens instead of oscillating (drives the error bounds down).
    if (cfg.epochs > 1) {
      const double t = static_cast<double>(epoch) / (cfg.epochs - 1);
      lr = lr_lo + 0.5 * (lr_hi - lr_lo) * (1.0 + std::cos(t * 3.14159265358979));
    }
    std::shuffle(idx.begin(), idx.end(), rng.gen());
    double epoch_loss = 0.0;

    for (size_t start = 0; start < n; start += batch) {
      const size_t stop = std::min(n, start + batch);
      const double inv = 1.0 / static_cast<double>(stop - start);
      std::fill(grad.begin(), grad.end(), 0.0);

      for (size_t s = start; s < stop; ++s) {
        const double* feat = &x[idx[s] * in_];
        // Forward.
        double out = b2_;
        for (int j = 0; j < hidden_; ++j) {
          double a = b1_[j];
          const double* wrow = &w1_[static_cast<size_t>(j) * in_];
          for (int i = 0; i < in_; ++i) a += wrow[i] * feat[i];
          hidden_act[j] = Sigmoid(a);
          out += w2_[j] * hidden_act[j];
        }
        const double err = out - y[idx[s]];
        epoch_loss += err * err;
        // Backward (d/dout of 0.5*err^2 scaled by 2 => err).
        const double dout = 2.0 * err * inv;
        grad[off_b2] += dout;
        for (int j = 0; j < hidden_; ++j) {
          const double h = hidden_act[j];
          grad[off_w2 + j] += dout * h;
          const double dh = dout * w2_[j] * h * (1.0 - h);
          grad[off_b1 + j] += dh;
          double* grow = &grad[static_cast<size_t>(j) * in_];
          for (int i = 0; i < in_; ++i) grow[i] += dh * feat[i];
        }
      }

      // Parameter update.
      auto apply = [&](size_t k, double* param) {
        if (cfg.use_adam) {
          m[k] = kBeta1 * m[k] + (1.0 - kBeta1) * grad[k];
          v[k] = kBeta2 * v[k] + (1.0 - kBeta2) * grad[k] * grad[k];
          const double mh = m[k] / (1.0 - std::pow(kBeta1, adam_t + 1.0));
          const double vh = v[k] / (1.0 - std::pow(kBeta2, adam_t + 1.0));
          *param -= lr * mh / (std::sqrt(vh) + kEps);
        } else {
          *param -= lr * grad[k];
        }
      };
      for (size_t k = 0; k < off_b1; ++k) apply(k, &w1_[k]);
      for (int j = 0; j < hidden_; ++j) apply(off_b1 + j, &b1_[j]);
      for (int j = 0; j < hidden_; ++j) apply(off_w2 + j, &w2_[j]);
      apply(off_b2, &b2_);
      ++adam_t;
    }

    last_loss = epoch_loss / static_cast<double>(n);
    if (cfg.early_stop_tol > 0.0) {
      if (last_loss < best_loss * (1.0 - cfg.early_stop_tol)) {
        best_loss = last_loss;
        stall = 0;
      } else if (++stall >= cfg.early_stop_patience) {
        break;
      }
    }
  }
  RebuildEngine();
  return last_loss;
}

void Mlp::WriteTo(Serializer& out) const {
  out.WritePod(in_);
  out.WritePod(hidden_);
  out.WriteVec(w1_);
  out.WriteVec(b1_);
  out.WriteVec(w2_);
  out.WritePod(b2_);
}

bool Mlp::ReadFrom(Deserializer& in, Mlp* out) {
  int ind = 0;
  int hidden = 0;
  if (!in.ReadPod(&ind) || !in.ReadPod(&hidden)) return false;
  // The constructor allocates hidden*in weights: bound the parameter
  // count before trusting it so a corrupted header cannot trigger a
  // huge allocation. The 16M-parameter ceiling (128 MB of weights per
  // sub-model) is far beyond anything trainable here, so every index a
  // build can produce also loads — real sub-models are 1-2 inputs and
  // <=64 hidden units.
  if (ind < 1 || hidden < 1 ||
      static_cast<uint64_t>(ind) * static_cast<uint64_t>(hidden) >
          (1u << 24)) {
    return in.Fail("MLP dimensions out of range");
  }
  Mlp m(ind, hidden);
  if (!in.ReadVec(&m.w1_) || !in.ReadVec(&m.b1_) || !in.ReadVec(&m.w2_) ||
      !in.ReadPod(&m.b2_)) {
    return false;
  }
  if (m.w1_.size() != static_cast<size_t>(ind) * hidden ||
      m.b1_.size() != static_cast<size_t>(hidden) ||
      m.w2_.size() != static_cast<size_t>(hidden)) {
    return in.Fail("MLP weight shapes disagree with its dimensions");
  }
  m.RebuildEngine();  // the reads above replaced the constructor's weights
  *out = std::move(m);
  return true;
}

}  // namespace rsmi
