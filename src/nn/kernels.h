#ifndef RSMI_NN_KERNELS_H_
#define RSMI_NN_KERNELS_H_

// Internal registry of SIMD kernel schedules. The per-ISA translation
// units (kernels_avx2.cc / kernels_avx512.cc, each compiled with its own
// -m flags) export their entry points through these lookups; on builds
// or targets where an ISA is unavailable the lookups return null and the
// dispatcher in inference_engine.cc falls back down the chain. Nothing
// outside src/nn/ includes this header.

#include <cstddef>

namespace rsmi {
namespace kernels {

/// Batched forward pass: (in, hidden, w1, b1, w2, b2, xs, n, out).
using BatchFn = void (*)(int, int, const double*, const double*, const double*,
                         double, const double*, size_t, double*);

// The shapes the hidden-dim rule `(2 + classes) / 2` actually produces
// with default configs, specialized as fixed-width fully-unrolled
// instantiations: RSMI leaves (in=2, h=51) and internals for grid order
// 3/2/1 (h=33/9/3), ZM leaves (in=1, h=50) and internals (h=16). Each
// X(in, hidden) expands to one template instantiation per ISA plus a
// row in the lookup tables, so the set is defined exactly once.
#define RSMI_SPECIALIZED_SHAPES(X) \
  X(1, 16)                         \
  X(1, 50)                         \
  X(2, 3)                          \
  X(2, 9)                          \
  X(2, 33)                         \
  X(2, 51)

/// True if (in, hidden) is in the specialized shape set. Independent of
/// build flags and CPU — says nothing about whether a specialized
/// kernel can actually run here.
bool HasSpecializedShape(int in, int hidden);

/// Generic shape-agnostic kernels, vectorized across the batch
/// dimension. Null when the build cannot target the ISA (non-x86, or a
/// toolchain without the per-source -m flags).
BatchFn GenericAvx2();
BatchFn GenericAvx512();

/// Shape-specialized fully-unrolled kernels. Null when the shape is not
/// in the specialized set or the build cannot target the ISA.
BatchFn SpecializedAvx2(int in, int hidden);
BatchFn SpecializedAvx512(int in, int hidden);

}  // namespace kernels
}  // namespace rsmi

#endif  // RSMI_NN_KERNELS_H_
